"""The campaign's durable metadata: signed manifest + shard sidecars.

On-disk layout of a campaign directory::

    dir/
      campaign.json            immutable identity: config + its digest
      MANIFEST.json            signed progress/integrity manifest
      shards/
        shard-00000.npz        one shard's traces (atomic, deterministic)
        shard-00000.json       sidecar: the shard's record, signed

Three files, three jobs:

* ``campaign.json`` is written once, before any shard, and never
  rewritten — it is the root of trust that survives anything short of
  losing the directory;
* ``MANIFEST.json`` is rewritten (atomically) after every published
  shard.  It carries a **self-signature**: the SHA-256 of its own
  canonical body.  A truncated, bit-flipped or hand-edited manifest
  fails the signature check and is rejected as
  :class:`~repro.errors.ManifestCorruptError` instead of being
  trusted;
* each sidecar duplicates its shard's manifest record (also signed,
  also carrying the campaign digest).  Sidecars are what make manifest
  loss a non-event: recovery re-adopts every shard whose sidecar and
  payload digest agree, so **verified-clean shards are never discarded
  or recomputed** just because the manifest died.

Trust order: payload sha256 (in record) > sidecar > manifest — each
level validates the one below before believing it.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.cache.canonical import digest
from repro.campaign.config import (
    CAMPAIGN_SCHEMA,
    CAMPAIGN_VERSION,
    CampaignConfig,
    campaign_digest,
)
from repro.campaign.sharding import shard_name
from repro.errors import ARTIFACT_DECODE_ERRORS, ManifestCorruptError
from repro.ioutil import atomic_write_json
from repro.web.generator import GENERATOR_VERSION
from repro.web.pageload import PageLoadConfig

#: Shard states a manifest may record.
SHARD_DONE = "done"
SHARD_QUARANTINED = "quarantined"
_STATUSES = (SHARD_DONE, SHARD_QUARANTINED)


# -- paths -----------------------------------------------------------------


def config_path(directory: str) -> str:
    return os.path.join(directory, "campaign.json")


def manifest_path(directory: str) -> str:
    return os.path.join(directory, "MANIFEST.json")


def shards_dir(directory: str) -> str:
    return os.path.join(directory, "shards")


def shard_payload_path(directory: str, shard_id: int) -> str:
    return os.path.join(shards_dir(directory), shard_name(shard_id) + ".npz")


def shard_sidecar_path(directory: str, shard_id: int) -> str:
    return os.path.join(shards_dir(directory), shard_name(shard_id) + ".json")


# -- records ---------------------------------------------------------------


@dataclass
class TrialFailureRecord:
    """One trial deterministically dropped inside a shard (e.g. a page
    load that stalled through every retry attempt)."""

    site_index: int
    sample: int
    error: str
    message: str


@dataclass
class ShardRecord:
    """One shard's durable state, as the manifest (and sidecar) see it."""

    shard_id: int
    start: int
    stop: int
    status: str
    rows: int = 0
    payload_sha256: str = ""
    payload_bytes: int = 0
    #: Trials dropped inside the shard (deterministic quarantines).
    failures: List[TrialFailureRecord] = field(default_factory=list)
    #: Shard-level quarantine reason ("" for done shards).
    error: str = ""
    error_class: str = ""

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ShardRecord":
        try:
            failures = [TrialFailureRecord(**f) for f in data.get("failures", [])]
            record = cls(
                shard_id=int(data["shard_id"]),
                start=int(data["start"]),
                stop=int(data["stop"]),
                status=str(data["status"]),
                rows=int(data.get("rows", 0)),
                payload_sha256=str(data.get("payload_sha256", "")),
                payload_bytes=int(data.get("payload_bytes", 0)),
                failures=failures,
                error=str(data.get("error", "")),
                error_class=str(data.get("error_class", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestCorruptError(f"malformed shard record: {exc}") from None
        if record.status not in _STATUSES:
            raise ManifestCorruptError(
                f"shard {record.shard_id}: unknown status {record.status!r}"
            )
        return record


@dataclass
class CampaignManifest:
    """The in-memory manifest: config digest + shard records by id."""

    config_digest: str
    n_shards: int
    shards: Dict[int, ShardRecord] = field(default_factory=dict)

    def record(self, record: ShardRecord) -> None:
        self.shards[record.shard_id] = record

    def done_ids(self) -> List[int]:
        return sorted(
            i for i, r in self.shards.items() if r.status == SHARD_DONE
        )

    def quarantined_ids(self) -> List[int]:
        return sorted(
            i for i, r in self.shards.items() if r.status == SHARD_QUARANTINED
        )

    def missing_ids(self) -> List[int]:
        """Planned shards with no record at all (not yet executed)."""
        return sorted(set(range(self.n_shards)) - set(self.shards))

    def to_body(self) -> dict:
        """The canonical (signable) dict form."""
        return {
            "schema": CAMPAIGN_SCHEMA,
            "version": CAMPAIGN_VERSION,
            "config_digest": self.config_digest,
            "n_shards": self.n_shards,
            "shards": [
                self.shards[i].to_dict() for i in sorted(self.shards)
            ],
        }


def _signed(body: dict) -> dict:
    return {**body, "signature": digest(body)}


def _verify_signature(data: dict, what: str) -> dict:
    """Strip and check the self-signature; the unsigned body remains."""
    if not isinstance(data, dict) or "signature" not in data:
        raise ManifestCorruptError(f"{what}: missing signature")
    body = {k: v for k, v in data.items() if k != "signature"}
    if digest(body) != data["signature"]:
        raise ManifestCorruptError(
            f"{what}: signature mismatch (truncated or tampered)"
        )
    return body


def _read_json(path: str, what: str) -> dict:
    try:
        with open(path, "rb") as handle:
            return json.loads(handle.read().decode("utf-8"))
    except FileNotFoundError:
        raise
    except ARTIFACT_DECODE_ERRORS as exc:
        raise ManifestCorruptError(f"{what}: unreadable ({exc})") from None


# -- campaign.json ---------------------------------------------------------


def write_config(directory: str, config: CampaignConfig) -> str:
    """Publish the immutable identity file; returns its digest."""
    cfg_digest = campaign_digest(config)
    atomic_write_json(
        config_path(directory),
        _signed(
            {
                "schema": CAMPAIGN_SCHEMA,
                "version": CAMPAIGN_VERSION,
                "generator_version": GENERATOR_VERSION,
                "config": config.to_dict(),
                "config_digest": cfg_digest,
            }
        ),
    )
    return cfg_digest


def load_config(directory: str) -> CampaignConfig:
    """Rebuild the :class:`CampaignConfig` from ``campaign.json``.

    Raises :class:`~repro.errors.ManifestCorruptError` when the file is
    unreadable, mis-signed, or its recorded digest does not match the
    config it contains (any of which means the root of trust is gone
    and repair needs the config re-supplied).
    """
    body = _verify_signature(
        _read_json(config_path(directory), "campaign.json"), "campaign.json"
    )
    if body.get("schema") != CAMPAIGN_SCHEMA:
        raise ManifestCorruptError(
            f"campaign.json: schema {body.get('schema')!r} is not "
            f"{CAMPAIGN_SCHEMA!r}"
        )
    if body.get("version") != CAMPAIGN_VERSION:
        raise ManifestCorruptError(
            f"campaign.json: version {body.get('version')!r}, this build "
            f"reads {CAMPAIGN_VERSION}"
        )
    raw = dict(body.get("config") or {})
    try:
        pageload = PageLoadConfig(**raw.pop("pageload", {}))
        config = CampaignConfig(pageload=pageload, **raw)
    except (TypeError, ValueError) as exc:
        raise ManifestCorruptError(f"campaign.json: bad config: {exc}") from None
    if campaign_digest(config) != body.get("config_digest"):
        raise ManifestCorruptError(
            "campaign.json: config digest mismatch (written by a "
            "different code version?)"
        )
    return config


# -- MANIFEST.json ---------------------------------------------------------


def write_manifest(directory: str, manifest: CampaignManifest) -> None:
    """Atomically publish the signed manifest."""
    atomic_write_json(manifest_path(directory), _signed(manifest.to_body()))


def load_manifest(
    directory: str, expect_digest: Optional[str] = None
) -> CampaignManifest:
    """Read and fully validate ``MANIFEST.json``.

    Every way a manifest can lie is rejected here as
    :class:`~repro.errors.ManifestCorruptError`: truncation/bit-flips
    (signature), schema drift, a digest naming a different campaign,
    duplicate shard entries, and out-of-range or malformed records.
    """
    body = _verify_signature(
        _read_json(manifest_path(directory), "manifest"), "manifest"
    )
    if body.get("schema") != CAMPAIGN_SCHEMA or body.get("version") != CAMPAIGN_VERSION:
        raise ManifestCorruptError(
            f"manifest: schema/version {body.get('schema')!r}/"
            f"{body.get('version')!r} not supported"
        )
    config_digest = str(body.get("config_digest", ""))
    if expect_digest is not None and config_digest != expect_digest:
        raise ManifestCorruptError(
            "manifest belongs to a different campaign config "
            f"({config_digest[:12]}… != {expect_digest[:12]}…)"
        )
    try:
        n_shards = int(body["n_shards"])
        raw_shards = list(body["shards"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ManifestCorruptError(f"manifest: malformed body: {exc}") from None
    manifest = CampaignManifest(config_digest=config_digest, n_shards=n_shards)
    for raw in raw_shards:
        record = ShardRecord.from_dict(raw)
        if record.shard_id in manifest.shards:
            raise ManifestCorruptError(
                f"manifest: duplicate entry for shard {record.shard_id}"
            )
        if not 0 <= record.shard_id < n_shards:
            raise ManifestCorruptError(
                f"manifest: shard {record.shard_id} out of range "
                f"[0, {n_shards})"
            )
        manifest.record(record)
    return manifest


# -- sidecars --------------------------------------------------------------


def write_sidecar(directory: str, config_digest: str, record: ShardRecord) -> None:
    """Publish the shard's signed sidecar (after its payload)."""
    atomic_write_json(
        shard_sidecar_path(directory, record.shard_id),
        _signed(
            {
                "schema": CAMPAIGN_SCHEMA,
                "version": CAMPAIGN_VERSION,
                "config_digest": config_digest,
                "record": record.to_dict(),
            }
        ),
    )


def load_sidecar(
    directory: str, shard_id: int, expect_digest: str
) -> ShardRecord:
    """Read and validate one shard sidecar.

    Raises ``FileNotFoundError`` when absent and
    :class:`~repro.errors.ManifestCorruptError` when present but
    unreadable, mis-signed, for a different campaign, or naming a
    different shard id than its filename.
    """
    what = f"sidecar {shard_name(shard_id)}"
    body = _verify_signature(
        _read_json(shard_sidecar_path(directory, shard_id), what), what
    )
    if body.get("config_digest") != expect_digest:
        raise ManifestCorruptError(f"{what}: belongs to a different campaign")
    record = ShardRecord.from_dict(dict(body.get("record") or {}))
    if record.shard_id != shard_id:
        raise ManifestCorruptError(
            f"{what}: names shard {record.shard_id}, not {shard_id}"
        )
    return record


def payload_sha256(path: str) -> str:
    """Streaming SHA-256 of a shard payload file."""
    h = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            h.update(block)
    return h.hexdigest()
