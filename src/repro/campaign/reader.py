"""Streaming campaign access: one shard in memory at a time.

A 1,000-site × 100-sample campaign is ~10⁵ traces — materialising it
as one :class:`~repro.capture.dataset.Dataset` defeats the point of
sharding.  :class:`CampaignReader` iterates shards in id order,
holding exactly one decoded shard at a time, and (by default) verifies
each payload's digest as it streams — a reader never silently consumes
a bit-flipped shard, it raises :class:`~repro.errors.ShardCorruptError`
naming it.

:func:`stream_feature_matrix` is the canonical consumer: it folds each
shard through k-FP feature extraction as it streams, so peak memory is
one shard of traces plus the (orders-of-magnitude smaller) accumulated
feature rows — constant in campaign size for the trace side.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.capture.dataset import Dataset
from repro.capture.serialize import load_dataset
from repro.capture.trace import Trace
from repro.campaign.config import CampaignConfig, campaign_digest
from repro.campaign.manifest import (
    SHARD_DONE,
    CampaignManifest,
    ShardRecord,
    load_config,
    load_manifest,
    payload_sha256,
    shard_payload_path,
)
from repro.errors import ARTIFACT_DECODE_ERRORS, ShardCorruptError


class CampaignReader:
    """Read-only, shard-streaming access to a campaign directory.

    ``verify=True`` (default) checks each payload's recorded SHA-256
    before decoding it; the cost is one extra sequential read per
    shard, and the payoff is that corruption surfaces at the shard that
    carries it instead of as downstream NaNs.
    """

    def __init__(self, directory: str, verify: bool = True) -> None:
        self.directory = directory
        self.verify = verify
        self.config: CampaignConfig = load_config(directory)
        self.config_digest = campaign_digest(self.config)
        self.manifest: CampaignManifest = load_manifest(
            directory, expect_digest=self.config_digest
        )

    # -- shard-level --------------------------------------------------------

    def done_records(self) -> List[ShardRecord]:
        """Records of done shards, in shard-id order."""
        return [self.manifest.shards[i] for i in self.manifest.done_ids()]

    def load_shard(self, shard_id: int) -> Dataset:
        """Decode one shard (digest-checked when ``verify``)."""
        record = self.manifest.shards.get(shard_id)
        if record is None or record.status != SHARD_DONE:
            raise ShardCorruptError(
                f"shard {shard_id} is not recorded done in the manifest"
            )
        path = shard_payload_path(self.directory, shard_id)
        if not os.path.exists(path):
            raise ShardCorruptError(f"shard {shard_id}: {path} is missing")
        if self.verify:
            actual = payload_sha256(path)
            if actual != record.payload_sha256:
                raise ShardCorruptError(
                    f"shard {shard_id}: sha256 {actual[:12]}… != recorded "
                    f"{record.payload_sha256[:12]}… — run `repro campaign "
                    "repair`"
                )
        try:
            return load_dataset(path)
        except ARTIFACT_DECODE_ERRORS as exc:
            raise ShardCorruptError(
                f"shard {shard_id}: undecodable archive: {exc}"
            ) from None

    def iter_shards(self) -> Iterator[Tuple[ShardRecord, Dataset]]:
        """Yield ``(record, dataset)`` per done shard, one at a time."""
        for record in self.done_records():
            yield record, self.load_shard(record.shard_id)

    def iter_traces(self) -> Iterator[Tuple[str, Trace]]:
        """Yield every ``(label, trace)`` in shard order, constant
        memory in campaign size."""
        for _, dataset in self.iter_shards():
            for label in dataset.labels:
                for trace in dataset.traces[label]:
                    yield label, trace

    # -- summaries ----------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """The ``repro campaign stats`` summary (cheap: records only)."""
        records = list(self.manifest.shards.values())
        done = [r for r in records if r.status == SHARD_DONE]
        return {
            "directory": self.directory,
            "config_digest": self.config_digest,
            "n_sites": self.config.n_sites,
            "n_samples": self.config.n_samples,
            "defense": self.config.defense,
            "shards_planned": self.config.n_shards,
            "shards_done": len(done),
            "shards_quarantined": len(self.manifest.quarantined_ids()),
            "shards_missing": len(self.manifest.missing_ids()),
            "rows": sum(r.rows for r in done),
            "trial_failures": sum(len(r.failures) for r in records),
            "payload_bytes": sum(r.payload_bytes for r in done),
        }


def stream_feature_matrix(
    directory: str,
    workers: int = 1,
    verify: bool = True,
    extractor=None,
) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """k-FP features for a whole campaign without loading it at once.

    Streams shard by shard, extracting features per shard (optionally
    fanned out over ``workers`` processes) and accumulating only the
    feature rows.  Returns ``(X, y, class_names)`` with ``y`` indexing
    into ``class_names`` — the exact shapes
    :mod:`repro.attacks` classifiers consume.  Row order is shard-major
    then label-major within a shard: deterministic for a given
    campaign, independent of worker count.
    """
    if extractor is None:
        from repro.attacks.features.kfp import KfpFeatureExtractor

        extractor = KfpFeatureExtractor()

    reader = CampaignReader(directory, verify=verify)
    blocks: List[np.ndarray] = []
    label_runs: List[Tuple[str, int]] = []
    for _, dataset in reader.iter_shards():
        traces: List[Trace] = []
        for label in dataset.labels:
            shard_traces = dataset.traces[label]
            traces.extend(shard_traces)
            label_runs.append((label, len(shard_traces)))
        if traces:
            blocks.append(extractor.extract_many(traces, workers=workers))

    class_names = sorted({label for label, _ in label_runs})
    index = {label: i for i, label in enumerate(class_names)}
    y = np.concatenate(
        [np.full(count, index[label], dtype=np.int64) for label, count in label_runs]
    ) if label_runs else np.empty(0, dtype=np.int64)
    X = np.vstack(blocks) if blocks else np.empty((0, 0))
    return X, y, class_names
