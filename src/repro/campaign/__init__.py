"""Sharded campaign orchestration with end-to-end dataset integrity.

A *campaign* is the repo's unit of scale: thousands of generated sites
(:mod:`repro.web.generator`) × samples × an optional defense, cut into
fixed-size shards, executed under the crash-tolerant
:class:`~repro.supervise.SupervisedPool`, and stored as atomic npz
payloads with a signed manifest.  Everything derives from position —
site profiles, trial seeds, shard boundaries — so any shard can be
re-derived byte-identically at any time: that is what turns integrity
checking (``repro campaign verify``) and self-healing
(``repro campaign repair``) from best-effort into proofs.

Module map: :mod:`~repro.campaign.config` (identity),
:mod:`~repro.campaign.sharding` (planning),
:mod:`~repro.campaign.worker` (pure shard execution),
:mod:`~repro.campaign.orchestrator` (durability ladder, resume),
:mod:`~repro.campaign.manifest` (signed metadata),
:mod:`~repro.campaign.verify` (detect + repair),
:mod:`~repro.campaign.reader` (constant-memory consumption).
"""

from repro.campaign.config import CampaignConfig, campaign_digest
from repro.campaign.manifest import (
    CampaignManifest,
    ShardRecord,
    TrialFailureRecord,
    load_config,
    load_manifest,
)
from repro.campaign.orchestrator import (
    CampaignRunReport,
    recover_manifest,
    run_campaign,
)
from repro.campaign.reader import CampaignReader, stream_feature_matrix
from repro.campaign.sharding import ShardSpec, plan_shards, shard_spec
from repro.campaign.verify import (
    RepairReport,
    VerifyReport,
    repair_campaign,
    verify_campaign,
)
from repro.campaign.worker import ShardOutcome, run_shard, trial_rng

__all__ = [
    "CampaignConfig",
    "campaign_digest",
    "CampaignManifest",
    "ShardRecord",
    "TrialFailureRecord",
    "load_config",
    "load_manifest",
    "CampaignRunReport",
    "recover_manifest",
    "run_campaign",
    "CampaignReader",
    "stream_feature_matrix",
    "ShardSpec",
    "plan_shards",
    "shard_spec",
    "RepairReport",
    "VerifyReport",
    "repair_campaign",
    "verify_campaign",
    "ShardOutcome",
    "run_shard",
    "trial_rng",
]
