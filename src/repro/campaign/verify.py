"""End-to-end campaign integrity: detect everything, re-derive only
what is bad, and prove the fix byte-for-byte.

:func:`verify_campaign` is read-only and exhaustive: it walks every
*planned* shard (the plan comes from the config, so a deleted file
cannot hide by being absent) and checks the full trust chain —
manifest signature, per-shard record/sidecar agreement, payload
presence, size, streaming SHA-256, and (in deep mode) that the archive
actually parses to the recorded row count.  Every deviation becomes a
structured :class:`Finding`; a truncated byte, a flipped bit, a
missing file and a duplicated record are all distinct findings, never
silent.

:func:`repair_campaign` is the write path and is deliberately boring:
for each damaged shard it re-runs the *same* pure derivation the
original run used and refuses — :class:`~repro.errors
.RepairMismatchError`, fatal — unless the re-derived bytes hash to
exactly the digest the manifest recorded.  Repair therefore cannot
paper over code or config drift by quietly regenerating different
data; byte-identity is checked, not assumed.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.campaign.config import CampaignConfig, campaign_digest
from repro.campaign.manifest import (
    SHARD_DONE,
    SHARD_QUARANTINED,
    ShardRecord,
    load_config,
    load_manifest,
    load_sidecar,
    payload_sha256,
    shard_payload_path,
    write_manifest,
    write_sidecar,
)
from repro.campaign.orchestrator import recover_manifest
from repro.campaign.sharding import shard_spec
from repro.campaign.worker import run_shard
from repro.errors import (
    ManifestCorruptError,
    RepairMismatchError,
)
from repro.ioutil import atomic_write_bytes
from repro.obs import runtime as _obs_runtime

#: Finding kinds, for callers that dispatch on them.
MANIFEST_CORRUPT = "manifest-corrupt"
PAYLOAD_MISSING = "payload-missing"
PAYLOAD_DIGEST = "payload-digest"
PAYLOAD_ROWS = "payload-rows"
SIDECAR_MISSING = "sidecar-missing"
SIDECAR_CORRUPT = "sidecar-corrupt"
SIDECAR_MISMATCH = "sidecar-mismatch"


@dataclass
class Finding:
    """One detected integrity violation (``shard_id`` is ``-1`` for
    campaign-level findings like a corrupt manifest)."""

    kind: str
    shard_id: int
    detail: str

    def __str__(self) -> str:
        where = "manifest" if self.shard_id < 0 else f"shard {self.shard_id}"
        return f"{self.kind} [{where}]: {self.detail}"


@dataclass
class VerifyReport:
    """Everything :func:`verify_campaign` established."""

    directory: str
    config_digest: str
    n_shards: int
    findings: List[Finding] = field(default_factory=list)
    #: Shards verified clean end-to-end.
    clean: List[int] = field(default_factory=list)
    #: Shards recorded quarantined (reported, not a corruption).
    quarantined: List[int] = field(default_factory=list)
    #: Planned shards with no record (campaign incomplete, not corrupt).
    unexecuted: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no integrity violation was found (an *incomplete*
        campaign can still be ok — completeness is a separate axis)."""
        return not self.findings

    @property
    def complete(self) -> bool:
        return not self.unexecuted and not self.quarantined

    def damaged_shards(self) -> List[int]:
        return sorted({f.shard_id for f in self.findings if f.shard_id >= 0})


def _records_under_test(
    directory: str, config: CampaignConfig, digest: str, report: VerifyReport
) -> Dict[int, ShardRecord]:
    """The per-shard records to verify against, preferring the manifest
    and falling back to sidecars when the manifest itself is bad."""
    try:
        manifest = load_manifest(directory, expect_digest=digest)
        return dict(manifest.shards)
    except FileNotFoundError:
        report.findings.append(
            Finding(MANIFEST_CORRUPT, -1, "MANIFEST.json is missing")
        )
    except ManifestCorruptError as exc:
        report.findings.append(Finding(MANIFEST_CORRUPT, -1, str(exc)))
    # Fall back to sidecar records so shard-level damage is still
    # enumerated precisely even with the manifest gone.
    records: Dict[int, ShardRecord] = {}
    for shard_id in range(config.n_shards):
        try:
            records[shard_id] = load_sidecar(directory, shard_id, digest)
        except (FileNotFoundError, ManifestCorruptError):
            continue
    return records


def verify_campaign(directory: str, deep: bool = True) -> VerifyReport:
    """Check every planned shard of the campaign at ``directory``.

    Read-only.  ``deep=True`` (default) additionally parses each
    payload archive and checks its row count against the record —
    catching archives that hash correctly but were recorded wrongly.
    Raises :class:`~repro.errors.ManifestCorruptError` only when
    ``campaign.json`` itself is unusable (without the config there is
    no plan to verify against).
    """
    config = load_config(directory)
    digest = campaign_digest(config)
    report = VerifyReport(
        directory=directory, config_digest=digest, n_shards=config.n_shards
    )
    records = _records_under_test(directory, config, digest, report)

    for shard_id in range(config.n_shards):
        record = records.get(shard_id)
        if record is None:
            report.unexecuted.append(shard_id)
            continue
        findings_before = len(report.findings)
        spec = shard_spec(config, shard_id)
        if (record.start, record.stop) != (spec.start, spec.stop):
            report.findings.append(
                Finding(
                    SIDECAR_MISMATCH,
                    shard_id,
                    f"record spans [{record.start}, {record.stop}), plan "
                    f"says [{spec.start}, {spec.stop})",
                )
            )
        if record.status == SHARD_QUARANTINED:
            report.quarantined.append(shard_id)
            continue
        _verify_payload(directory, shard_id, record, deep, report)
        _verify_sidecar(directory, shard_id, record, digest, report)
        if len(report.findings) == findings_before:
            report.clean.append(shard_id)

    obs = _obs_runtime.session()
    if obs is not None:
        obs.registry.counter("campaign.verify.shards_checked").add(
            len(records)
        )
        obs.registry.counter("campaign.verify.findings").add(
            len(report.findings)
        )
        obs.emit(
            "campaign.verify",
            "campaign",
            findings=len(report.findings),
            clean=len(report.clean),
        )
    return report


def _verify_payload(
    directory: str,
    shard_id: int,
    record: ShardRecord,
    deep: bool,
    report: VerifyReport,
) -> None:
    path = shard_payload_path(directory, shard_id)
    if not os.path.exists(path):
        report.findings.append(
            Finding(PAYLOAD_MISSING, shard_id, f"{path} does not exist")
        )
        return
    size = os.path.getsize(path)
    if size != record.payload_bytes:
        report.findings.append(
            Finding(
                PAYLOAD_DIGEST,
                shard_id,
                f"size {size} != recorded {record.payload_bytes} "
                "(truncated or grown)",
            )
        )
        return
    actual = payload_sha256(path)
    if actual != record.payload_sha256:
        report.findings.append(
            Finding(
                PAYLOAD_DIGEST,
                shard_id,
                f"sha256 {actual[:12]}… != recorded "
                f"{record.payload_sha256[:12]}…",
            )
        )
        return
    if deep:
        from repro.capture.serialize import load_dataset

        try:
            dataset = load_dataset(path)
        except Exception as exc:
            report.findings.append(
                Finding(PAYLOAD_ROWS, shard_id, f"archive unreadable: {exc}")
            )
            return
        rows = sum(len(dataset.traces[label]) for label in dataset.labels)
        if rows != record.rows:
            report.findings.append(
                Finding(
                    PAYLOAD_ROWS,
                    shard_id,
                    f"{rows} rows in archive, record says {record.rows}",
                )
            )


def _verify_sidecar(
    directory: str,
    shard_id: int,
    record: ShardRecord,
    digest: str,
    report: VerifyReport,
) -> None:
    try:
        sidecar = load_sidecar(directory, shard_id, digest)
    except FileNotFoundError:
        report.findings.append(
            Finding(SIDECAR_MISSING, shard_id, "sidecar file does not exist")
        )
        return
    except ManifestCorruptError as exc:
        report.findings.append(Finding(SIDECAR_CORRUPT, shard_id, str(exc)))
        return
    if sidecar.to_dict() != record.to_dict():
        report.findings.append(
            Finding(
                SIDECAR_MISMATCH,
                shard_id,
                "sidecar record disagrees with manifest record",
            )
        )


@dataclass
class RepairReport:
    """What :func:`repair_campaign` changed."""

    directory: str
    #: Shards whose payloads were re-derived (byte-identical, proven).
    rederived: List[int] = field(default_factory=list)
    #: Shards whose sidecar was rewritten from the manifest record.
    sidecars_rewritten: List[int] = field(default_factory=list)
    #: Quarantined shards retried (only with ``retry_quarantined``).
    retried: List[int] = field(default_factory=list)
    manifest_recovered: bool = False
    #: Damaged shards with no recorded digest anywhere — cannot be
    #: repaired in place; ``run_campaign(resume=True)`` re-executes.
    unrepairable: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.unrepairable


def repair_campaign(
    directory: str, retry_quarantined: bool = False
) -> RepairReport:
    """Re-derive exactly the damaged shards, byte-identically.

    The repair loop is the same pure derivation as the original run:
    :func:`~repro.campaign.worker.run_shard` from the stored config.
    The re-derived bytes must hash to the digest the record holds —
    a mismatch raises :class:`~repro.errors.RepairMismatchError`
    (fatal: the code or config drifted under the campaign; regenerating
    different bytes and calling it "repaired" would corrupt the dataset
    semantically while making it look whole).

    With ``retry_quarantined``, shards recorded quarantined are also
    re-executed (their failure may have been infrastructure); success
    replaces the quarantine record, failure keeps it.
    """
    config = load_config(directory)
    digest = campaign_digest(config)
    report = RepairReport(directory=directory)

    # A corrupt/missing manifest is repaired first, from sidecars, so
    # the per-shard pass below works against recovered records.
    try:
        manifest = load_manifest(directory, expect_digest=digest)
    except (FileNotFoundError, ManifestCorruptError):
        manifest = recover_manifest(directory, config, digest)
        report.manifest_recovered = True

    pre = verify_campaign(directory, deep=True)
    by_shard: Dict[int, List[Finding]] = {}
    for finding in pre.findings:
        if finding.shard_id >= 0:
            by_shard.setdefault(finding.shard_id, []).append(finding)

    for shard_id, findings in sorted(by_shard.items()):
        record = manifest.shards.get(shard_id)
        if record is None or not record.payload_sha256:
            report.unrepairable.append(shard_id)
            continue
        kinds = {f.kind for f in findings}
        if kinds <= {SIDECAR_MISSING, SIDECAR_CORRUPT, SIDECAR_MISMATCH}:
            # Payload proved clean; only the sidecar needs rewriting.
            write_sidecar(directory, digest, record)
            report.sidecars_rewritten.append(shard_id)
            continue
        _rederive(directory, config, digest, record)
        report.rederived.append(shard_id)

    if retry_quarantined:
        for shard_id in manifest.quarantined_ids():
            outcome = run_shard(config, shard_spec(config, shard_id))
            if outcome.status != SHARD_DONE or outcome.payload is None:
                continue
            path = shard_payload_path(directory, shard_id)
            atomic_write_bytes(path, outcome.payload)
            record = outcome.to_record(
                payload_sha256=hashlib.sha256(outcome.payload).hexdigest(),
                payload_bytes=len(outcome.payload),
            )
            write_sidecar(directory, digest, record)
            manifest.record(record)
            report.retried.append(shard_id)

    if report.manifest_recovered or report.retried:
        write_manifest(directory, manifest)

    obs = _obs_runtime.session()
    if obs is not None:
        obs.registry.counter("campaign.repair.rederived").add(
            len(report.rederived)
        )
        obs.emit(
            "campaign.repair",
            "campaign",
            rederived=len(report.rederived),
            sidecars=len(report.sidecars_rewritten),
            unrepairable=len(report.unrepairable),
        )
    return report


def _rederive(
    directory: str, config: CampaignConfig, digest: str, record: ShardRecord
) -> None:
    """Recompute one shard and prove byte-identity before publishing."""
    spec = shard_spec(config, record.shard_id)
    outcome = run_shard(config, spec)
    payload = outcome.payload or b""
    actual = hashlib.sha256(payload).hexdigest()
    if actual != record.payload_sha256 or len(payload) != record.payload_bytes:
        raise RepairMismatchError(
            f"shard {record.shard_id}: re-derivation produced "
            f"{actual[:12]}… ({len(payload)} B) but the manifest records "
            f"{record.payload_sha256[:12]}… ({record.payload_bytes} B); "
            "the code or config has drifted under this campaign"
        )
    atomic_write_bytes(shard_payload_path(directory, record.shard_id), payload)
    write_sidecar(directory, digest, record)
