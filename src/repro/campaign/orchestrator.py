"""The campaign coordinator: shards in flight, one writer on disk.

Execution model
---------------

The coordinator plans the shard list from the config, subtracts what
the manifest already holds, and runs the remainder — in-process for
``workers=1``, through a :class:`~repro.supervise.SupervisedPool`
otherwise (one shard per pool chunk: the shard is already the coarse
unit of work, durability and repair, so it is the unit of rescheduling
and quarantine too).  Workers compute; **only the coordinator writes**.
Publishing one shard is a strict durability ladder::

    payload npz  →  sidecar json  →  MANIFEST.json
    (atomic)        (atomic)          (atomic rewrite)

Each rung is an atomic replace and each rung is only climbed after the
one below is durable, so a crash at *any* instant leaves the directory
in one of exactly three states per shard: absent, payload-only
(orphan, re-adopted by digest on resume), or fully recorded.  There is
no fourth state and therefore nothing to roll back — ``--resume``
just re-plans against whatever the ladder reached.

Interruption (Ctrl-C, SIGTERM via
:func:`~repro.errors.sigterm_translated`, ENOSPC) propagates out of
:func:`run_campaign` *between* rungs, never half-way up one.

Manifest loss is also survivable: :func:`recover_manifest` rebuilds it
from the signed sidecars, re-verifying each adopted shard's payload
digest — clean shards are never re-executed just because the manifest
died (the regression the checkpoint-eviction tests pin down).
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.campaign.config import CampaignConfig, campaign_digest
from repro.campaign.manifest import (
    SHARD_QUARANTINED,
    CampaignManifest,
    ShardRecord,
    config_path,
    load_config,
    load_manifest,
    load_sidecar,
    manifest_path,
    payload_sha256,
    shard_payload_path,
    write_config,
    write_manifest,
    write_sidecar,
)
from repro.campaign.sharding import shard_spec
from repro.campaign.worker import ShardOutcome, run_shard_chunk
from repro.errors import (
    FatalError,
    ManifestCorruptError,
    sigterm_translated,
)
from repro.ioutil import atomic_write_bytes
from repro.obs import runtime as _obs_runtime
from repro.supervise import SupervisedPool, SupervisorConfig, SupervisorReport


@dataclass
class CampaignRunReport:
    """What one :func:`run_campaign` invocation did."""

    directory: str
    config_digest: str
    #: Shards executed (or re-executed) by this invocation.
    executed: List[int] = field(default_factory=list)
    #: Shards adopted from a previous invocation without re-running.
    resumed: List[int] = field(default_factory=list)
    #: Orphan payloads (payload durable, record lost) re-adopted.
    adopted_orphans: List[int] = field(default_factory=list)
    quarantined: List[int] = field(default_factory=list)
    trial_failures: int = 0
    supervisor: Optional[SupervisorReport] = None

    @property
    def complete(self) -> bool:
        return not self.quarantined


def recover_manifest(
    directory: str, config: CampaignConfig, config_digest: str
) -> CampaignManifest:
    """Rebuild the manifest from sidecars after manifest loss/corruption.

    Adoption rules, per planned shard:

    * sidecar valid + status ``done`` + payload present with the
      recorded sha256 → adopt (never re-executed);
    * sidecar valid + status ``quarantined`` → adopt the record (the
      quarantine evidence survives; repair may retry it explicitly);
    * sidecar missing/corrupt, or payload digest disagrees → leave the
      shard unrecorded; it is re-derived like any missing shard.

    The rebuilt manifest is written immediately, so recovery happens
    at most once per corruption event.
    """
    manifest = CampaignManifest(
        config_digest=config_digest, n_shards=config.n_shards
    )
    for shard_id in range(config.n_shards):
        try:
            record = load_sidecar(directory, shard_id, config_digest)
        except (FileNotFoundError, ManifestCorruptError):
            continue
        if record.status == SHARD_QUARANTINED:
            manifest.record(record)
            continue
        path = shard_payload_path(directory, shard_id)
        try:
            if payload_sha256(path) != record.payload_sha256:
                continue
        except OSError:
            continue
        manifest.record(record)
    write_manifest(directory, manifest)
    _emit(
        "campaign.manifest.recovered",
        adopted=len(manifest.shards),
        planned=config.n_shards,
    )
    return manifest


def _open_campaign(
    directory: str, config: Optional[CampaignConfig], resume: bool
) -> tuple:
    """Resolve (config, digest, manifest) for a run; see run_campaign."""
    if os.path.exists(config_path(directory)):
        existing = load_config(directory)
        if config is not None and campaign_digest(config) != campaign_digest(existing):
            raise FatalError(
                f"campaign directory {directory} was created with a "
                "different config; refusing to mix shard generations"
            )
        config = existing
    elif config is None:
        raise FatalError(
            f"no campaign.json in {directory} and no config supplied"
        )
    else:
        write_config(directory, config)
    digest = campaign_digest(config)

    if os.path.exists(manifest_path(directory)):
        try:
            manifest = load_manifest(directory, expect_digest=digest)
        except ManifestCorruptError:
            manifest = recover_manifest(directory, config, digest)
        if manifest.shards and not resume:
            raise FatalError(
                f"{directory} already holds {len(manifest.shards)} shard "
                "records; pass resume=True (--resume) to continue it"
            )
    else:
        manifest = CampaignManifest(config_digest=digest, n_shards=config.n_shards)
        if resume and os.path.isdir(directory):
            # Resuming with no manifest at all: rebuild from sidecars
            # (covers "manifest deleted" as well as "killed before the
            # first manifest write").
            manifest = recover_manifest(directory, config, digest)
        else:
            write_manifest(directory, manifest)
    return config, digest, manifest


def _adopt_orphan(
    directory: str, config: CampaignConfig, digest: str, shard_id: int
) -> Optional[ShardRecord]:
    """Adopt a payload whose sidecar/manifest record was lost.

    The payload was published atomically, so if it exists it is a
    complete archive — but without a recorded digest we cannot *trust*
    it, so adoption re-derives nothing and claims nothing: the file's
    own bytes are hashed and recorded.  Row counts are recovered from
    the archive itself.
    """
    path = shard_payload_path(directory, shard_id)
    if not os.path.exists(path):
        return None
    from repro.capture.serialize import load_dataset

    try:
        dataset = load_dataset(path)
    except Exception:
        # Unreadable orphan: delete nothing, claim nothing — the shard
        # is simply re-executed and the atomic publish replaces it.
        return None
    spec = shard_spec(config, shard_id)
    rows = sum(len(dataset.traces[label]) for label in dataset.labels)
    if rows > spec.n_trials:
        return None
    record = ShardRecord(
        shard_id=shard_id,
        start=spec.start,
        stop=spec.stop,
        status="done",
        rows=rows,
        payload_sha256=payload_sha256(path),
        payload_bytes=os.path.getsize(path),
    )
    write_sidecar(directory, digest, record)
    return record


def _publish(
    directory: str,
    digest: str,
    manifest: CampaignManifest,
    outcome: ShardOutcome,
) -> ShardRecord:
    """Climb the durability ladder for one outcome (see module doc)."""
    if outcome.status == SHARD_QUARANTINED or outcome.payload is None:
        record = outcome.to_record()
    else:
        path = shard_payload_path(directory, outcome.shard_id)
        atomic_write_bytes(path, outcome.payload)
        import hashlib

        record = outcome.to_record(
            payload_sha256=hashlib.sha256(outcome.payload).hexdigest(),
            payload_bytes=len(outcome.payload),
        )
    write_sidecar(directory, digest, record)
    manifest.record(record)
    write_manifest(directory, manifest)
    _count(
        "campaign.shards_done"
        if record.status == "done"
        else "campaign.shards_quarantined"
    )
    _count("campaign.rows", record.rows)
    _emit(
        "campaign.shard.done"
        if record.status == "done"
        else "campaign.shard.quarantined",
        shard=record.shard_id,
        rows=record.rows,
        failures=len(record.failures),
    )
    return record


def run_campaign(
    directory: str,
    config: Optional[CampaignConfig] = None,
    workers: int = 1,
    resume: bool = False,
    supervisor: Optional[SupervisorConfig] = None,
    progress: Optional[Callable[[ShardRecord], None]] = None,
) -> CampaignRunReport:
    """Run (or resume) a campaign into ``directory``.

    Fresh runs need ``config``; resumed runs may omit it (the stored
    ``campaign.json`` is authoritative, and a supplied config must
    match it digest-for-digest).  On resume, shards already recorded
    ``done`` are adopted untouched, orphan payloads are re-adopted by
    digest, quarantined shards are retried, and only the remainder
    executes.  Interruption (``KeyboardInterrupt``,
    :class:`~repro.errors.RunTerminated`, ``OSError`` e.g. ENOSPC)
    propagates *after* the last completed shard is durable — the
    manifest is consistent at every instant.
    """
    os.makedirs(directory, exist_ok=True)
    with sigterm_translated():
        config, digest, manifest = _open_campaign(directory, config, resume)
        report = CampaignRunReport(directory=directory, config_digest=digest)
        report.resumed = manifest.done_ids()

        # Orphan payloads: published but never recorded (killed between
        # ladder rungs, or manifest recovered without their sidecar).
        todo: List[int] = []
        for shard_id in manifest.missing_ids() + manifest.quarantined_ids():
            if shard_id not in manifest.shards:
                adopted = _adopt_orphan(directory, config, digest, shard_id)
                if adopted is not None:
                    manifest.record(adopted)
                    report.adopted_orphans.append(shard_id)
                    continue
            todo.append(shard_id)
        if report.adopted_orphans:
            write_manifest(directory, manifest)
        todo.sort()

        def publish_outcome(outcome: ShardOutcome) -> None:
            record = _publish(directory, digest, manifest, outcome)
            report.executed.append(record.shard_id)
            report.trial_failures += len(record.failures)
            if record.status == SHARD_QUARANTINED:
                report.quarantined.append(record.shard_id)
            if progress is not None:
                progress(record)

        _emit("campaign.run.start", shards=len(todo), resumed=len(report.resumed))
        if todo:
            if workers <= 1:
                for shard_id in todo:
                    for outcome in run_shard_chunk(config, [shard_id]):
                        publish_outcome(outcome)
            else:
                report.supervisor = _run_supervised(
                    config, todo, workers, supervisor, publish_outcome
                )
                for quarantined in report.supervisor.quarantined:
                    shard_id = int(quarantined.item)
                    if shard_id in manifest.shards and shard_id in set(
                        report.executed
                    ):
                        continue
                    spec = shard_spec(config, shard_id)
                    publish_outcome(
                        ShardOutcome(
                            shard_id=shard_id,
                            start=spec.start,
                            stop=spec.stop,
                            status=SHARD_QUARANTINED,
                            error=(
                                f"workers died {quarantined.crashes} times "
                                "executing this shard"
                            ),
                            error_class="WorkerCrashError",
                        )
                    )
        report.executed.sort()
        report.quarantined = manifest.quarantined_ids()
        _emit(
            "campaign.run.end",
            executed=len(report.executed),
            quarantined=len(report.quarantined),
        )
        return report


def _run_supervised(
    config: CampaignConfig,
    todo: List[int],
    workers: int,
    supervisor: Optional[SupervisorConfig],
    publish_outcome: Callable[[ShardOutcome], None],
) -> SupervisorReport:
    """Fan shards out one-per-chunk under the supervised pool."""
    task: Callable = functools.partial(run_shard_chunk, config)
    if _obs_runtime.session() is not None:
        task = _obs_runtime.WorkerTask(task)

    def complete(payload) -> None:
        for outcome in _obs_runtime.absorb(payload):
            publish_outcome(outcome)

    pool = SupervisedPool(workers, task, complete, config=supervisor)
    return pool.run([[shard_id] for shard_id in todo])


def _count(name: str, amount: int = 1) -> None:
    obs = _obs_runtime.session()
    if obs is not None:
        obs.registry.counter(name).add(amount)


def _emit(kind: str, **fields) -> None:
    obs = _obs_runtime.session()
    if obs is not None:
        obs.emit(kind, "campaign", **fields)
