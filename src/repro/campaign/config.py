"""Campaign identity: the frozen config and its canonical digest.

A campaign is fully determined by its :class:`CampaignConfig` — which
sites exist (generator seed + count), how many visits of each, how the
page loads are simulated, which defense transforms the traces, and how
the trial grid is cut into shards.  :func:`campaign_digest` collapses
all of that (plus the generator and schema versions) into one SHA-256;
every durable artifact of a campaign — manifest, shard sidecars,
cache entries — carries this digest, so artifacts from *different*
campaigns (or the same campaign under changed code) can never be mixed
silently.

``shard_size`` is deliberately part of the digest: shard payloads are
whole-shard npz archives, so the same trials cut differently produce
different artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.canonical import digest
from repro.web.generator import GENERATOR_VERSION
from repro.web.pageload import PageLoadConfig

#: Schema of the on-disk campaign layout (config, manifest, sidecars).
CAMPAIGN_SCHEMA = "repro.campaign/manifest"
CAMPAIGN_VERSION = 1


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that decides a campaign's bytes.

    Frozen: derive variants with :func:`dataclasses.replace`.  Worker
    counts, supervisor knobs and resume state are deliberately *not*
    here — they may change between an interrupted run and its resume
    without moving a single byte of output.
    """

    #: Generated sites: indices ``0 .. n_sites`` of the parametric
    #: generator (:mod:`repro.web.generator`) under ``seed``.
    n_sites: int = 1000
    #: Visits per site.
    n_samples: int = 10
    #: Trials per shard (the unit of durability, repair and streaming).
    shard_size: int = 100
    #: Master seed: site profiles, per-trial randomness and defense
    #: randomness all derive from it positionally.
    seed: int = 0
    #: Registered defense applied to every trace (None = undefended).
    defense: Optional[str] = None
    #: Retry attempts per trial (reseeded; stalls that survive every
    #: attempt are recorded as quarantined trials, deterministically).
    retries: int = 2
    #: Page-load simulation parameters.
    pageload: PageLoadConfig = field(default_factory=PageLoadConfig)

    def __post_init__(self) -> None:
        if self.n_sites < 1:
            raise ValueError(f"n_sites must be >= 1, got {self.n_sites}")
        if self.n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {self.n_samples}")
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {self.shard_size}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        if self.retries < 1:
            raise ValueError(f"retries must be >= 1, got {self.retries}")
        if self.defense is not None:
            from repro.defenses.registry import DEFENSE_REGISTRY

            if self.defense.lower() not in DEFENSE_REGISTRY:
                raise ValueError(
                    f"unknown defense {self.defense!r}; choose from "
                    f"{sorted(DEFENSE_REGISTRY)}"
                )

    @property
    def n_trials(self) -> int:
        return self.n_sites * self.n_samples

    @property
    def n_shards(self) -> int:
        return -(-self.n_trials // self.shard_size)

    def to_dict(self) -> dict:
        from repro.experiments.config import config_to_dict

        return config_to_dict(self)


def campaign_digest(config: CampaignConfig) -> str:
    """The campaign's identity digest (see module docstring)."""
    return digest(
        {
            "schema": CAMPAIGN_SCHEMA,
            "version": CAMPAIGN_VERSION,
            "generator_version": GENERATOR_VERSION,
            "config": config.to_dict(),
        }
    )
