"""Shard planning: cutting the trial grid into durable units.

The campaign's trial grid is flat and site-major: trial ``k`` is
``(site_index, sample) = divmod(k, n_samples)``.  Shards are
contiguous ``[start, stop)`` slices of that flat order, so a shard is
identified entirely by its position — no shard list needs to be stored
to know what shard 17 *should* contain, which is what makes repair and
manifest recovery possible from nothing but the config.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.campaign.config import CampaignConfig


@dataclass(frozen=True)
class ShardSpec:
    """One shard's coordinates: ``[start, stop)`` of the flat grid."""

    shard_id: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ValueError(f"shard_id must be >= 0, got {self.shard_id}")
        if not 0 <= self.start < self.stop:
            raise ValueError(
                f"need 0 <= start < stop, got [{self.start}, {self.stop})"
            )

    @property
    def n_trials(self) -> int:
        return self.stop - self.start


def shard_name(shard_id: int) -> str:
    """Canonical shard file stem (``shard-00042``)."""
    return f"shard-{shard_id:05d}"


def shard_spec(config: CampaignConfig, shard_id: int) -> ShardSpec:
    """The spec of shard ``shard_id`` under ``config`` (pure)."""
    if not 0 <= shard_id < config.n_shards:
        raise ValueError(
            f"shard_id {shard_id} out of range [0, {config.n_shards})"
        )
    start = shard_id * config.shard_size
    return ShardSpec(
        shard_id=shard_id,
        start=start,
        stop=min(start + config.shard_size, config.n_trials),
    )


def plan_shards(config: CampaignConfig) -> List[ShardSpec]:
    """Every shard of the campaign, in id order."""
    return [shard_spec(config, i) for i in range(config.n_shards)]


def shard_trials(config: CampaignConfig, spec: ShardSpec) -> List[Tuple[int, int]]:
    """The ``(site_index, sample)`` coordinates covered by ``spec``."""
    if spec.stop > config.n_trials:
        raise ValueError(
            f"shard [{spec.start}, {spec.stop}) exceeds the "
            f"{config.n_trials}-trial grid"
        )
    return [divmod(k, config.n_samples) for k in range(spec.start, spec.stop)]
