"""Shard execution: one shard's coordinates in, deterministic bytes out.

:func:`run_shard` is the campaign's pure core.  Everything it touches
is position-derived — site profiles from ``(seed, site_index)``, trial
randomness from ``(seed, site_index, sample, attempt)``, defense
randomness from the trial stream — so the payload bytes of shard 17
are a function of ``(config, 17)`` and nothing else.  Not worker
count, not execution order, not which run (first attempt, resume,
or repair years later) happened to compute it.  That single property
is what the whole integrity story hangs off: repair can promise
*byte-identical* re-derivation because the original bytes never
depended on anything that can't be reconstructed.

Failure handling inside a shard is deterministic too: a trial whose
page load stalls is retried ``config.retries`` times with reseeded
attempts, and if every attempt stalls the trial is *dropped and
recorded* as a :class:`~repro.campaign.manifest.TrialFailureRecord`.
The same trial fails the same way on every re-derivation, so failure
records round-trip through repair just like trace bytes do.

:func:`run_shard_chunk` is the picklable
:class:`~repro.supervise.SupervisedPool` task: shard-scoped exceptions
become quarantined :class:`ShardOutcome`\\ s (the campaign keeps
going), while termination requests and fatal taxonomy errors
propagate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.capture.dataset import Dataset
from repro.capture.serialize import dumps_dataset
from repro.campaign.config import CampaignConfig
from repro.campaign.manifest import (
    SHARD_DONE,
    SHARD_QUARANTINED,
    ShardRecord,
    TrialFailureRecord,
)
from repro.campaign.sharding import ShardSpec, shard_spec, shard_trials
from repro.errors import FatalError, TrialError
from repro.obs import runtime as _obs_runtime
from repro.web.generator import generate_profile, site_name
from repro.web.pageload import load_page_strict

#: Domain-separation salt for trial randomness — a different stream
#: family than profile generation (:data:`repro.web.generator
#: .GENERATOR_SALT`) even under the same campaign seed.
TRIAL_SALT = 0x731A1


def trial_rng(
    seed: int, site_index: int, sample: int, attempt: int
) -> np.random.Generator:
    """The generator for one trial *attempt*, derived from its identity.

    Retries advance ``attempt``, nothing else: a retried trial draws a
    genuinely fresh stream while every other trial's bytes stay put.
    """
    return np.random.default_rng([TRIAL_SALT, seed, site_index, sample, attempt])


@dataclass
class ShardOutcome:
    """What executing one shard produced (picklable, pool-safe).

    ``payload`` is the deterministic npz archive bytes for done shards
    and ``None`` for quarantined ones.  The coordinator — never the
    worker — turns outcomes into files, so there is exactly one writer
    of the campaign directory.
    """

    shard_id: int
    start: int
    stop: int
    status: str
    rows: int = 0
    payload: Optional[bytes] = None
    failures: List[TrialFailureRecord] = field(default_factory=list)
    error: str = ""
    error_class: str = ""

    def to_record(self, payload_sha256: str = "", payload_bytes: int = 0) -> ShardRecord:
        """The manifest record for this outcome (digest filled in by
        the coordinator after the payload is durable)."""
        return ShardRecord(
            shard_id=self.shard_id,
            start=self.start,
            stop=self.stop,
            status=self.status,
            rows=self.rows,
            payload_sha256=payload_sha256,
            payload_bytes=payload_bytes,
            failures=list(self.failures),
            error=self.error,
            error_class=self.error_class,
        )


def run_shard(config: CampaignConfig, spec: ShardSpec) -> ShardOutcome:
    """Execute one shard: every trial in ``[start, stop)``, in order.

    Pure in the sense that matters: equal ``(config, spec)`` produce
    equal ``payload`` bytes and equal failure records, regardless of
    process, worker count, or how many times this shard ran before.
    """
    defense = None
    if config.defense is not None:
        from repro.defenses.registry import build_defense

        # Per-trial randomness comes through apply(trace, rng); the
        # builder seed only fixes construction-time parameters.
        defense = build_defense(config.defense, seed=config.seed)

    dataset = Dataset()
    failures: List[TrialFailureRecord] = []
    rows = 0
    for site_index, sample in shard_trials(config, spec):
        profile = generate_profile(config.seed, site_index)
        label = site_name(site_index)
        last_error: Optional[TrialError] = None
        for attempt in range(config.retries):
            rng = trial_rng(config.seed, site_index, sample, attempt)
            try:
                trace = load_page_strict(profile, label, config.pageload, rng)
            except TrialError as exc:
                last_error = exc
                _count("campaign.trial_retries")
                continue
            if defense is not None:
                trace = defense.apply(trace, rng)
            dataset.add(label, trace)
            rows += 1
            last_error = None
            break
        if last_error is not None:
            _count("campaign.trial_failures")
            failures.append(
                TrialFailureRecord(
                    site_index=site_index,
                    sample=sample,
                    error=type(last_error).__name__,
                    message=str(last_error),
                )
            )
    return ShardOutcome(
        shard_id=spec.shard_id,
        start=spec.start,
        stop=spec.stop,
        status=SHARD_DONE,
        rows=rows,
        payload=dumps_dataset(dataset),
        failures=failures,
    )


def run_shard_chunk(config: CampaignConfig, shard_ids: List[int]) -> List[ShardOutcome]:
    """:class:`~repro.supervise.SupervisedPool` task: run shards by id.

    A shard whose execution raises an ordinary exception is returned as
    a *quarantined outcome* — the campaign records it and moves on —
    while ``KeyboardInterrupt``/``RunTerminated`` (``BaseException``)
    and :class:`~repro.errors.FatalError` propagate: termination must
    unwind, and fatal taxonomy errors are bugs retrying would mask.
    """
    outcomes: List[ShardOutcome] = []
    for shard_id in shard_ids:
        spec = shard_spec(config, shard_id)
        try:
            outcomes.append(run_shard(config, spec))
        except FatalError:
            raise
        except Exception as exc:  # shard-scoped quarantine
            outcomes.append(
                ShardOutcome(
                    shard_id=spec.shard_id,
                    start=spec.start,
                    stop=spec.stop,
                    status=SHARD_QUARANTINED,
                    error=str(exc),
                    error_class=type(exc).__name__,
                )
            )
    return outcomes


def _count(name: str, amount: int = 1) -> None:
    obs = _obs_runtime.session()
    if obs is not None:
        obs.registry.counter(name).add(amount)
