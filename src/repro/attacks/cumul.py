"""The CUMUL website-fingerprinting attack (Panchenko et al., NDSS 2016).

CUMUL represents a trace by its *cumulative byte curve*: walk the
packets in order, adding each incoming packet's size and subtracting
each outgoing one; sample the resulting curve at ``n_interp`` evenly
spaced points.  Four scalar features (totals per direction and packet
counts) are prepended.  A linear SVM separates the classes.

CUMUL sees none of k-FP's timing features — it is a pure
size/direction attack — which makes it a useful second attacker:
timing-only defenses (delaying) should barely move it, while
size-changing defenses (splitting) should.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.attacks.base import TraceAttack
from repro.capture.trace import Trace, ensure_finite
from repro.ml.linear import LinearSVC


def cumulative_features(trace: Trace, n_interp: int = 100) -> np.ndarray:
    """The CUMUL feature vector of one trace.

    Total for degenerate traces: an empty trace yields the documented
    all-zero vector, a single packet a constant curve, and
    one-directional traces a monotone curve.  Malformed arrays
    (non-positive sizes) raise :class:`repro.errors.TraceError`.
    """
    ensure_finite(trace, "cumul")
    n = len(trace)
    header = np.zeros(4)
    if n == 0:
        return np.concatenate([header, np.zeros(n_interp)])
    signed = trace.sizes.astype(np.float64) * -trace.directions
    # Convention: incoming (-1) adds, outgoing (+1) subtracts.
    curve = np.cumsum(signed)
    header[0] = trace.incoming_bytes
    header[1] = trace.outgoing_bytes
    header[2] = (trace.directions == -1).sum()
    header[3] = (trace.directions == 1).sum()
    samples = np.interp(
        np.linspace(0, n - 1, n_interp), np.arange(n), curve
    )
    return np.concatenate([header, samples])


class CumulAttack(TraceAttack):
    """Linear-SVM CUMUL."""

    name = "cumul"
    seed_kwarg = "random_state"

    def __init__(
        self,
        n_interp: int = 100,
        epochs: int = 30,
        random_state: Optional[int] = None,
    ) -> None:
        self.n_interp = n_interp
        self.svm = LinearSVC(epochs=epochs, random_state=random_state)

    def params(self) -> Dict[str, object]:
        return {
            "n_interp": self.n_interp,
            "epochs": self.svm.epochs,
            "random_state": self.svm.random_state,
        }

    def _features(self, traces: Sequence[Trace]) -> np.ndarray:
        if len(traces) == 0:
            return np.empty((0, 4 + self.n_interp), dtype=np.float64)
        return np.vstack(
            [cumulative_features(t, self.n_interp) for t in traces]
        )

    def fit(self, traces: Sequence[Trace], y: np.ndarray) -> "CumulAttack":
        self.svm.fit(self._features(traces), y)
        return self

    def predict(self, traces: Sequence[Trace]) -> np.ndarray:
        return self.svm.predict(self._features(traces))
