"""The k-FP feature set (Hayes & Danezis, USENIX Security 2016).

k-FP summarises a packet trace — timestamps, directions and sizes —
into a fixed-length vector of interpretable statistics.  The groups
below follow the reference implementation's feature families:

* packet counts and direction fractions,
* inter-arrival time statistics per direction,
* transmission-time quantiles per direction,
* packet-ordering statistics (position of outgoing/incoming packets),
* concentration of outgoing packets over fixed-size windows,
* packets-per-second statistics,
* first/last-30-packet composition,
* burst statistics (runs of same-direction packets),
* size/volume statistics (the TLS-traffic analogue of Tor cell
  counts, used because the paper attacks direct HTTPS traffic).

Every feature has a stable name (see :meth:`KfpFeatureExtractor.names`)
so experiments can report feature importances.  Empty or degenerate
traces yield zero-filled vectors rather than NaNs, keeping downstream
classifiers total.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.capture.trace import IN, OUT, Trace, ensure_finite

#: Window sizes for the two concentration feature families.
CONCENTRATION_CHUNK = 20
ALT_CONCENTRATION_CHUNK = 70
#: How many leading/trailing packets the composition features examine.
EDGE_PACKETS = 30
#: Number of evenly spaced samples kept from the per-chunk and
#: per-second series (k-FP's "alternative" features).
SERIES_SAMPLES = 20


def _stats(values: np.ndarray, prefix: str, names: List[str]) -> List[float]:
    """max/mean/std/quantiles block used by several families."""
    names.extend(
        [
            f"{prefix}_max",
            f"{prefix}_mean",
            f"{prefix}_std",
            f"{prefix}_q75",
        ]
    )
    if len(values) == 0:
        return [0.0, 0.0, 0.0, 0.0]
    return [
        float(np.max(values)),
        float(np.mean(values)),
        float(np.std(values)),
        float(np.percentile(values, 75)),
    ]


def _quantiles(values: np.ndarray, prefix: str, names: List[str]) -> List[float]:
    """25/50/75/100 transmission-time quantiles."""
    names.extend([f"{prefix}_q25", f"{prefix}_q50", f"{prefix}_q75", f"{prefix}_q100"])
    if len(values) == 0:
        return [0.0, 0.0, 0.0, 0.0]
    return [
        float(np.percentile(values, 25)),
        float(np.percentile(values, 50)),
        float(np.percentile(values, 75)),
        float(np.max(values)),
    ]


def _sampled_series(series: np.ndarray, n: int) -> np.ndarray:
    """Exactly ``n`` evenly spaced samples (zero-padded when short)."""
    out = np.zeros(n)
    if len(series) == 0:
        return out
    idx = np.linspace(0, len(series) - 1, n).astype(int)
    return series[idx].astype(np.float64)


class KfpFeatureExtractor:
    """Extracts the k-FP vector from a :class:`Trace`."""

    #: Cache identity: bump ``version`` whenever the feature definition
    #: changes, so stale cached feature matrices invalidate.
    name = "kfp"
    version = 1

    def __init__(self) -> None:
        self._names: List[str] = []
        self._names_final = False
        # Build the name list once by extracting from a tiny dummy trace.
        dummy = Trace(
            np.array([0.0, 0.01]),
            np.array([OUT, IN], dtype=np.int8),
            np.array([100, 1500]),
        )
        self._extract(dummy)
        self._names_final = True

    def names(self) -> List[str]:
        """Stable feature names, index-aligned with the vectors."""
        return list(self._names)

    @property
    def n_features(self) -> int:
        return len(self._names)

    def extract(self, trace: Trace) -> np.ndarray:
        """The k-FP feature vector of one trace.

        Degenerate traces are total: zero-length, single-packet and
        all-one-direction traces yield finite vectors (absent feature
        families report 0.0).  A trace with non-finite timestamps —
        only reachable by mutating arrays after construction — raises
        :class:`repro.errors.TraceError` rather than emitting NaNs.
        """
        ensure_finite(trace, "kfp")
        return np.asarray(self._extract(trace), dtype=np.float64)

    def extract_many(self, traces: Sequence[Trace], workers: int = 1) -> np.ndarray:
        """Feature matrix, one row per trace.

        ``workers > 1`` splits the batch into contiguous chunks over a
        shared process pool (``0`` = one worker per core).  Each row is
        a pure function of its trace, so the matrix is bit-identical
        for any worker count; ``workers=1`` stays in-process.
        """
        from repro.parallel import (
            chunked,
            default_chunk_size,
            resolve_workers,
            shared_pool,
        )

        if len(traces) == 0:
            return np.empty((0, self.n_features), dtype=np.float64)
        workers = resolve_workers(workers)
        if workers <= 1 or len(traces) <= 1:
            return np.vstack([self.extract(t) for t in traces])
        chunks = chunked(list(traces), default_chunk_size(len(traces), workers))
        parts = shared_pool(workers).map(_extract_feature_chunk, chunks)
        return np.vstack(list(parts))

    # -- the actual feature computation ------------------------------------------

    def _extract(self, trace: Trace) -> List[float]:
        names: List[str] = []
        feats: List[float] = []
        times = trace.times - (trace.times[0] if len(trace) else 0.0)
        dirs = trace.directions
        sizes = trace.sizes.astype(np.float64)
        n = len(trace)
        in_mask = dirs == IN
        out_mask = dirs == OUT
        n_in = int(in_mask.sum())
        n_out = int(out_mask.sum())

        # --- counts -------------------------------------------------------
        names += ["count_total", "count_in", "count_out", "frac_in", "frac_out"]
        feats += [
            float(n),
            float(n_in),
            float(n_out),
            n_in / n if n else 0.0,
            n_out / n if n else 0.0,
        ]

        # --- inter-arrival times -------------------------------------------
        iat_all = np.diff(times) if n >= 2 else np.empty(0)
        iat_in = np.diff(times[in_mask]) if n_in >= 2 else np.empty(0)
        iat_out = np.diff(times[out_mask]) if n_out >= 2 else np.empty(0)
        feats += _stats(iat_all, "iat_all", names)
        feats += _stats(iat_in, "iat_in", names)
        feats += _stats(iat_out, "iat_out", names)

        # --- transmission-time quantiles -----------------------------------
        feats += _quantiles(times, "ttime_all", names)
        feats += _quantiles(times[in_mask], "ttime_in", names)
        feats += _quantiles(times[out_mask], "ttime_out", names)

        # --- packet ordering -------------------------------------------------
        positions = np.arange(n, dtype=np.float64)
        for mask, label in ((out_mask, "order_out"), (in_mask, "order_in")):
            pos = positions[mask]
            names += [f"{label}_mean", f"{label}_std"]
            if len(pos):
                feats += [float(pos.mean()), float(pos.std())]
            else:
                feats += [0.0, 0.0]

        # --- concentration of outgoing packets ------------------------------
        out_binary = (dirs == OUT).astype(np.float64)
        chunks = [
            out_binary[i : i + CONCENTRATION_CHUNK].sum()
            for i in range(0, n, CONCENTRATION_CHUNK)
        ]
        conc = np.asarray(chunks, dtype=np.float64)
        names += [
            "conc_mean",
            "conc_std",
            "conc_min",
            "conc_max",
            "conc_median",
            "conc_q70",
            "conc_q80",
            "conc_q90",
            "conc_sum",
        ]
        if len(conc):
            feats += [
                float(conc.mean()),
                float(conc.std()),
                float(conc.min()),
                float(conc.max()),
                float(np.median(conc)),
                float(np.percentile(conc, 70)),
                float(np.percentile(conc, 80)),
                float(np.percentile(conc, 90)),
                float(conc.sum()),
            ]
        else:
            feats += [0.0] * 9
        sampled = _sampled_series(conc, SERIES_SAMPLES)
        names += [f"conc_sample_{i}" for i in range(SERIES_SAMPLES)]
        feats += sampled.tolist()

        # --- alternative concentration (larger windows) -----------------------
        alt_chunks = [
            out_binary[i : i + ALT_CONCENTRATION_CHUNK].sum()
            for i in range(0, n, ALT_CONCENTRATION_CHUNK)
        ]
        alt = _sampled_series(np.asarray(alt_chunks), SERIES_SAMPLES)
        names += [f"altconc_sample_{i}" for i in range(SERIES_SAMPLES)]
        feats += alt.tolist()

        # --- packets per second ------------------------------------------------
        if n >= 2 and times[-1] > 0:
            seconds = np.floor(times).astype(np.int64)
            pps = np.bincount(seconds - seconds[0])
        else:
            pps = np.asarray([n], dtype=np.int64)
        pps = pps.astype(np.float64)
        names += ["pps_mean", "pps_std", "pps_min", "pps_max", "pps_median"]
        feats += [
            float(pps.mean()),
            float(pps.std()),
            float(pps.min()),
            float(pps.max()),
            float(np.median(pps)),
        ]
        pps_sampled = _sampled_series(pps, SERIES_SAMPLES)
        names += [f"pps_sample_{i}" for i in range(SERIES_SAMPLES)]
        feats += pps_sampled.tolist()

        # --- first/last 30 packets --------------------------------------------
        head = dirs[:EDGE_PACKETS]
        tail = dirs[-EDGE_PACKETS:] if n else dirs[:0]
        names += ["first30_in", "first30_out", "last30_in", "last30_out"]
        feats += [
            float((head == IN).sum()),
            float((head == OUT).sum()),
            float((tail == IN).sum()),
            float((tail == OUT).sum()),
        ]

        # --- bursts (runs of same-direction packets) ---------------------------
        feats += self._burst_features(dirs, names)

        # --- sizes / volume ------------------------------------------------------
        names += [
            "bytes_total",
            "bytes_in",
            "bytes_out",
            "size_mean",
            "size_std",
            "size_in_mean",
            "size_in_std",
            "size_out_mean",
            "size_out_std",
            "size_unique",
            "size_max",
        ]
        if n:
            feats += [
                float(sizes.sum()),
                float(sizes[in_mask].sum()),
                float(sizes[out_mask].sum()),
                float(sizes.mean()),
                float(sizes.std()),
                float(sizes[in_mask].mean()) if n_in else 0.0,
                float(sizes[in_mask].std()) if n_in else 0.0,
                float(sizes[out_mask].mean()) if n_out else 0.0,
                float(sizes[out_mask].std()) if n_out else 0.0,
                float(len(np.unique(sizes))),
                float(sizes.max()),
            ]
        else:
            feats += [0.0] * 11

        # --- total duration ------------------------------------------------------
        names += ["duration"]
        feats += [float(times[-1]) if n else 0.0]

        if not self._names_final:
            self._names = names
        return feats

    @staticmethod
    def _burst_features(dirs: np.ndarray, names: List[str]) -> List[float]:
        """Statistics of maximal same-direction runs (k-FP bursts)."""
        names.extend(
            [
                "burst_count_in",
                "burst_len_in_mean",
                "burst_len_in_max",
                "burst_len_in_gt5",
                "burst_len_in_gt10",
                "burst_len_in_gt20",
                "burst_count_out",
                "burst_len_out_mean",
                "burst_len_out_max",
                "burst_len_out_gt5",
                "burst_len_out_gt10",
                "burst_len_out_gt20",
            ]
        )
        if len(dirs) == 0:
            return [0.0] * 12
        change = np.nonzero(np.diff(dirs))[0] + 1
        starts = np.concatenate([[0], change])
        ends = np.concatenate([change, [len(dirs)]])
        lengths = (ends - starts).astype(np.float64)
        run_dirs = dirs[starts]
        out: List[float] = []
        for direction in (IN, OUT):
            runs = lengths[run_dirs == direction]
            if len(runs):
                out += [
                    float(len(runs)),
                    float(runs.mean()),
                    float(runs.max()),
                    float((runs > 5).sum()),
                    float((runs > 10).sum()),
                    float((runs > 20).sum()),
                ]
            else:
                out += [0.0] * 6
        return out


_DEFAULT_EXTRACTOR: KfpFeatureExtractor = None


def _default_extractor() -> KfpFeatureExtractor:
    """The lazily built per-process extractor (also used by pool
    workers, which each get their own copy after fork/spawn)."""
    global _DEFAULT_EXTRACTOR
    if _DEFAULT_EXTRACTOR is None:
        _DEFAULT_EXTRACTOR = KfpFeatureExtractor()
    return _DEFAULT_EXTRACTOR


def _extract_feature_chunk(traces: Sequence[Trace]) -> np.ndarray:
    """Pool-worker task: the feature rows of one chunk of traces."""
    return _default_extractor().extract_many(traces)


def extract_features(trace: Trace) -> np.ndarray:
    """Module-level convenience wrapper around a shared extractor."""
    return _default_extractor().extract(trace)


def extract_features_batch(traces: Sequence[Trace], workers: int = 1) -> np.ndarray:
    """Batch counterpart of :func:`extract_features`: the feature
    matrix of ``traces``, optionally fanned out over ``workers``
    processes (bit-identical for any worker count)."""
    return _default_extractor().extract_many(traces, workers=workers)
