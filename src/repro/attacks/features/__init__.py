"""Feature extraction for WF attacks."""

from repro.attacks.features.kfp import KfpFeatureExtractor, extract_features

__all__ = ["KfpFeatureExtractor", "extract_features"]
