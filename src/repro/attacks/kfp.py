"""The k-FP website-fingerprinting attack (Hayes & Danezis).

k-FP proceeds in two stages:

1. extract the hand-crafted feature vector of every trace
   (:mod:`repro.attacks.features.kfp`);
2. train a random forest; classify either by the forest's vote
   (``mode="forest"``, the configuration behind the paper's Table 2,
   captioned "k-FP Random Forest accuracy rates") or by hamming-nearest
   neighbours over the forest's leaf-index vectors
   (``mode="leaf-knn"``, the original paper's open-world matcher).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks.base import TraceAttack
from repro.attacks.features.kfp import KfpFeatureExtractor
from repro.capture.dataset import Dataset
from repro.capture.trace import Trace
from repro.ml.forest import RandomForest
from repro.ml.knn import KNeighborsClassifier


class KFingerprinting(TraceAttack):
    """The k-FP attack.

    Parameters
    ----------
    n_estimators:
        Trees in the random forest (the reference uses ~150 on small
        closed worlds).
    mode:
        ``"forest"`` — classify by forest vote;
        ``"leaf-knn"`` — k-NN with hamming distance over leaf vectors.
    k_neighbors:
        Neighbours for leaf-knn mode.
    random_state:
        Seed for the forest.
    n_jobs:
        Processes for feature extraction and forest fit/predict
        (1 = in-process, 0 = one per core; results are bit-identical
        for any value — wall-clock only, so excluded from ``params()``).
    """

    name = "kfp"
    seed_kwarg = "random_state"

    def __init__(
        self,
        n_estimators: int = 150,
        mode: str = "forest",
        k_neighbors: int = 3,
        max_depth: Optional[int] = None,
        random_state: Optional[int] = None,
        n_jobs: int = 1,
    ) -> None:
        if mode not in ("forest", "leaf-knn"):
            raise ValueError(f"mode must be forest or leaf-knn, got {mode!r}")
        self.mode = mode
        self.k_neighbors = k_neighbors
        self.n_jobs = n_jobs
        self.extractor = KfpFeatureExtractor()
        self.forest = RandomForest(
            n_estimators=n_estimators,
            max_depth=max_depth,
            oob_score=False,
            random_state=random_state,
            n_jobs=n_jobs,
        )
        self._leaf_knn: Optional[KNeighborsClassifier] = None
        self.labels_: List[str] = []

    def params(self) -> Dict[str, object]:
        return {
            "n_estimators": self.forest.n_estimators,
            "mode": self.mode,
            "k_neighbors": self.k_neighbors,
            "max_depth": self.forest.max_depth,
            "random_state": self.forest.random_state,
        }

    # -- fitting -------------------------------------------------------------------

    def fit(self, traces: Sequence[Trace], y: np.ndarray) -> "KFingerprinting":
        """Fit on raw traces with integer labels."""
        X = self.extractor.extract_many(traces, workers=self.n_jobs)
        return self.fit_features(X, y)

    def fit_features(self, X: np.ndarray, y: np.ndarray) -> "KFingerprinting":
        """Fit on pre-extracted feature matrices."""
        self.forest.fit(X, y)
        if self.mode == "leaf-knn":
            leaves = self.forest.apply(X)
            self._leaf_knn = KNeighborsClassifier(
                n_neighbors=self.k_neighbors, metric="hamming"
            )
            self._leaf_knn.fit(leaves, y)
        return self

    def fit_dataset(self, dataset: Dataset) -> "KFingerprinting":
        """Fit on a labelled dataset (labels recorded for reporting)."""
        traces, y = dataset.to_arrays()
        self.labels_ = dataset.labels
        return self.fit(traces, y)

    # -- prediction ------------------------------------------------------------------

    def predict(self, traces: Sequence[Trace]) -> np.ndarray:
        X = self.extractor.extract_many(traces, workers=self.n_jobs)
        return self.predict_features(X)

    def predict_features(self, X: np.ndarray) -> np.ndarray:
        if self.mode == "forest":
            return self.forest.predict(X)
        if self._leaf_knn is None:
            raise RuntimeError("attack is not fitted")
        return self._leaf_knn.predict(self.forest.apply(X))

    def feature_importances(self) -> np.ndarray:
        """Mean decrease-in-impurity proxy: how often each feature is
        used for splitting, weighted by node size."""
        importances = np.zeros(self.extractor.n_features)
        for tree in self.forest.trees_:
            internal = tree.feature >= 0
            weights = tree.value[internal].sum(axis=1)
            np.add.at(importances, tree.feature[internal], weights)
        total = importances.sum()
        if total > 0:
            importances /= total
        return importances
