"""Website-fingerprinting attacks and other passive traffic analysis.

* :mod:`repro.attacks.features` — the k-FP feature set (timing,
  direction, ordering, concentration, burst and size statistics).
* :mod:`repro.attacks.kfp` — the k-FP attack (Hayes & Danezis) used in
  the paper's Table 2, in classic random-forest mode and in
  leaf-vector k-NN mode.
* :mod:`repro.attacks.knn_attack` — a simple feature k-NN baseline.
* :mod:`repro.attacks.cca_id` — passive congestion-control
  identification (the paper's §5.2 CCAnalyzer discussion).
"""

from repro.attacks.features.kfp import KfpFeatureExtractor, extract_features
from repro.attacks.kfp import KFingerprinting
from repro.attacks.knn_attack import FeatureKnnAttack
from repro.attacks.cumul import CumulAttack, cumulative_features

__all__ = [
    "KfpFeatureExtractor",
    "extract_features",
    "KFingerprinting",
    "FeatureKnnAttack",
    "CumulAttack",
    "cumulative_features",
]
