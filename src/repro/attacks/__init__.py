"""Website-fingerprinting attacks and other passive traffic analysis.

* :mod:`repro.attacks.base` — the Attack contract every attack
  implements (``name`` / ``params()`` / ``fit`` / ``predict`` /
  ``spec()``), mirroring the Defense contract.
* :mod:`repro.attacks.registry` — taxonomy + factory:
  ``build_attack(name, seed, **kwargs)`` and spec round-trips.
* :mod:`repro.attacks.features` — the k-FP feature set (timing,
  direction, ordering, concentration, burst and size statistics).
* :mod:`repro.attacks.kfp` — the k-FP attack (Hayes & Danezis) used in
  the paper's Table 2, in classic random-forest mode and in
  leaf-vector k-NN mode.
* :mod:`repro.attacks.knn_attack` — a simple feature k-NN baseline.
* :mod:`repro.attacks.cumul` — the CUMUL attack (timing-blind
  cumulative size curves).
* :mod:`repro.attacks.tam` — the coarse-grained time x direction
  traffic aggregation matrix representation.
* :mod:`repro.attacks.dl` — the deep-learning-class attack
  (TAM + from-scratch numpy MLP).
* :mod:`repro.attacks.cca_id` — passive congestion-control
  identification (the paper's §5.2 CCAnalyzer discussion).
"""

from repro.attacks.base import Attack, TraceAttack
from repro.attacks.cca_id import CcaIdentifier
from repro.attacks.cumul import CumulAttack, cumulative_features
from repro.attacks.dl import TamMlpAttack
from repro.attacks.features.kfp import KfpFeatureExtractor, extract_features
from repro.attacks.kfp import KFingerprinting
from repro.attacks.knn_attack import FeatureKnnAttack
from repro.attacks.registry import (
    ATTACK_REGISTRY,
    ATTACK_TAXONOMY,
    AttackInfo,
    attack_from_spec,
    build_attack,
    implemented_attacks,
)
from repro.attacks.tam import TamExtractor

__all__ = [
    # contract + registry
    "Attack",
    "TraceAttack",
    "AttackInfo",
    "ATTACK_REGISTRY",
    "ATTACK_TAXONOMY",
    "attack_from_spec",
    "build_attack",
    "implemented_attacks",
    # attacks
    "KfpFeatureExtractor",
    "extract_features",
    "KFingerprinting",
    "FeatureKnnAttack",
    "CumulAttack",
    "cumulative_features",
    "TamExtractor",
    "TamMlpAttack",
    "CcaIdentifier",
]
