"""TAM: the coarse-grained time x direction traffic aggregation matrix.

The representation behind the strongest deep-learning WF attacks
(Robust Fingerprinting's TAM, CountMamba's counting matrices): instead
of hand-crafted statistics, aggregate the trace into a fixed-size
matrix of per-direction packet counts over equal time bins.  The
classifier then *learns* which regions of the matrix discriminate
sites — exactly the kind of attacker the paper's stack-level
countermeasures must survive to support its robustness claims.

Shape: ``(2, n_bins)`` — channel 0 counts outgoing packets (client to
server), channel 1 incoming — flattened to a ``2 * n_bins`` vector so
it plugs into any matrix classifier.  Packets past ``max_duration``
accumulate in the final bin, so the matrix always conserves the packet
count: ``matrix.sum() == len(trace)``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.capture.trace import IN, OUT, Trace, ensure_finite

#: Channel order of the flattened vector.
CHANNELS = (OUT, IN)


def _extract_tam_chunk(
    traces: Sequence[Trace], n_bins: int, max_duration: float
) -> np.ndarray:
    """Worker entry point: TAM rows for a chunk of traces."""
    extractor = TamExtractor(n_bins=n_bins, max_duration=max_duration)
    return np.vstack([extractor.extract(t) for t in traces])


class TamExtractor:
    """Extracts the flattened TAM of a :class:`Trace`.

    Parameters
    ----------
    n_bins:
        Time bins per direction channel (the matrix width).
    max_duration:
        Seconds covered by the bins; later packets land in the final
        bin (clipping, not dropping — bin counts always sum to the
        packet count).
    """

    #: Cache identity: bump ``version`` whenever the representation
    #: changes for unchanged params, so cached matrices invalidate.
    name = "tam"
    version = 1

    def __init__(self, n_bins: int = 64, max_duration: float = 10.0) -> None:
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        if max_duration <= 0:
            raise ValueError(f"max_duration must be positive, got {max_duration}")
        self.n_bins = n_bins
        self.max_duration = float(max_duration)

    def params(self) -> Dict[str, object]:
        """Canonical parameters (folded into feature cache keys)."""
        return {"n_bins": self.n_bins, "max_duration": self.max_duration}

    @property
    def n_features(self) -> int:
        return 2 * self.n_bins

    def names(self) -> List[str]:
        """Stable feature names, index-aligned with the vectors."""
        return [
            f"tam_{label}_bin{i:03d}"
            for label in ("out", "in")
            for i in range(self.n_bins)
        ]

    def matrix(self, trace: Trace) -> np.ndarray:
        """The ``(2, n_bins)`` count matrix of one trace.

        Total for degenerate inputs: an empty trace yields the all-zero
        matrix (documented zero-feature behaviour), and single-packet
        or one-directional traces bin normally.  Non-finite timestamps
        raise :class:`repro.errors.TraceError` — an inf/NaN time would
        otherwise cast to a garbage bin index and silently corrupt the
        count-conservation property.
        """
        ensure_finite(trace, "tam")
        counts = np.zeros((2, self.n_bins), dtype=np.float64)
        n = len(trace)
        if n == 0:
            return counts
        t = trace.times - trace.times[0]
        bins = np.minimum(
            (t * (self.n_bins / self.max_duration)).astype(np.int64),
            self.n_bins - 1,
        )
        for channel, direction in enumerate(CHANNELS):
            mask = trace.directions == direction
            np.add.at(counts[channel], bins[mask], 1.0)
        return counts

    def extract(self, trace: Trace) -> np.ndarray:
        """The flattened TAM vector (``2 * n_bins``)."""
        return self.matrix(trace).reshape(-1)

    def extract_many(self, traces: Sequence[Trace], workers: int = 1) -> np.ndarray:
        """TAM matrix rows, one per trace.

        ``workers > 1`` splits the batch into contiguous chunks over a
        shared process pool (``0`` = one worker per core).  Each row is
        a pure function of its trace, so the matrix is bit-identical
        for any worker count; ``workers=1`` stays in-process.
        """
        from repro.parallel import (
            chunked,
            default_chunk_size,
            resolve_workers,
            shared_pool,
        )

        if len(traces) == 0:
            return np.empty((0, self.n_features), dtype=np.float64)
        workers = resolve_workers(workers)
        if workers <= 1 or len(traces) <= 1:
            return np.vstack([self.extract(t) for t in traces])
        chunks = chunked(list(traces), default_chunk_size(len(traces), workers))
        parts = shared_pool(workers).map(
            _extract_tam_chunk,
            chunks,
            [self.n_bins] * len(chunks),
            [self.max_duration] * len(chunks),
        )
        return np.vstack(list(parts))
