"""Passive congestion-control identification (the paper's §5.2).

CCAnalyzer identifies a flow's CCA by watching bottleneck-queue
behaviour from a passive vantage point.  Here we model the same
capability at the level our eavesdropper already operates: packet
timestamps and sizes of the flow.  A random forest over timing/burst
features distinguishes Reno, CUBIC and BBR bulk flows — and the
experiment in :mod:`repro.experiments.cca_identification` shows Stob's
packet-sequence control degrades this identification, supporting the
paper's claim that users may want to hide their CCA (which "reveals
other information, such as the OS kernel and application identity").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.attacks.features.kfp import KfpFeatureExtractor
from repro.capture.trace import Trace, TraceObserver
from repro.ml.forest import RandomForest
from repro.ml.metrics import accuracy_score
from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.host import make_flow
from repro.stack.tcp import TcpConfig
from repro.units import mbps, msec

CCA_NAMES = ("reno", "cubic", "bbr")


def bulk_flow_trace(
    cca: str,
    rng: np.random.Generator,
    transfer_bytes: int = 3 * 1024 * 1024,
    duration: float = 3.0,
    controller_factory=None,
) -> Trace:
    """One bulk transfer's packet trace (server -> client).

    Path rate/RTT are jittered per flow so the classifier must learn
    CCA behaviour, not a fixed path signature.
    """
    sim = Simulator()
    path = NetworkPath(
        rate=mbps(float(rng.uniform(20, 80))),
        rtt=msec(float(rng.uniform(15, 60))),
        buffer_bdp=float(rng.uniform(0.8, 2.0)),
    )
    flow = make_flow(
        sim,
        path,
        client_config=TcpConfig(cc=cca),
        server_config=TcpConfig(cc=cca),
    )
    if controller_factory is not None:
        flow.server.segment_controller = controller_factory()
    observer = TraceObserver()
    flow.server_host.nic.add_tap(observer.tap_incoming)
    flow.client_host.nic.add_tap(observer.tap_outgoing)
    flow.server.on_established = lambda: flow.server.write(transfer_bytes)
    flow.connect()
    sim.run(until=duration)
    return observer.trace()


@dataclass
class CcaIdentifier:
    """Random-forest CCA classifier over trace features."""

    n_estimators: int = 60
    random_state: int = 0

    def __post_init__(self) -> None:
        self.extractor = KfpFeatureExtractor()
        self.forest = RandomForest(
            n_estimators=self.n_estimators, random_state=self.random_state
        )
        self.labels_: Tuple[str, ...] = CCA_NAMES

    def fit(self, traces: Sequence[Trace], y: np.ndarray) -> "CcaIdentifier":
        X = self.extractor.extract_many(traces)
        self.forest.fit(X, np.asarray(y, dtype=np.int64))
        return self

    def predict(self, traces: Sequence[Trace]) -> np.ndarray:
        return self.forest.predict(self.extractor.extract_many(traces))

    def score(self, traces: Sequence[Trace], y: np.ndarray) -> float:
        return accuracy_score(np.asarray(y), self.predict(traces))


def collect_cca_traces(
    n_per_cca: int,
    seed: int = 0,
    controller_factory=None,
) -> Tuple[List[Trace], np.ndarray]:
    """Bulk-flow traces for each CCA, with labels."""
    root = np.random.default_rng(seed)
    traces: List[Trace] = []
    labels: List[int] = []
    for index, cca in enumerate(CCA_NAMES):
        for _ in range(n_per_cca):
            rng = np.random.default_rng(root.integers(0, 2**63))
            traces.append(
                bulk_flow_trace(cca, rng, controller_factory=controller_factory)
            )
            labels.append(index)
    return traces, np.asarray(labels, dtype=np.int64)
