"""The deep-learning-class WF attack: TAM representation + numpy MLP.

Composes :class:`repro.attacks.tam.TamExtractor` (coarse-grained
time x direction count matrices — the representation family behind
Deep-Fingerprinting-style attacks) with
:class:`repro.ml.mlp.MlpClassifier` (from-scratch minibatch SGD with
momentum).  Unlike k-FP/CUMUL/k-NN, nothing here is hand-crafted per
feature family: the model learns its own discriminators from the raw
aggregation matrix, which is precisely the attacker class the paper's
stack-level split/delay countermeasures must withstand.

Determinism: the TAM rows are pure per-trace functions (bit-identical
for any ``workers`` count) and the MLP's randomness is fixed by
``seed``, so two equal-spec attacks trained on equal data produce
bit-identical predictions — the property the registry round-trip and
smoke tests assert.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.attacks.base import TraceAttack
from repro.attacks.tam import TamExtractor
from repro.capture.dataset import Dataset
from repro.capture.trace import Trace
from repro.ml.mlp import MlpClassifier


class TamMlpAttack(TraceAttack):
    """MLP over flattened traffic aggregation matrices.

    Parameters
    ----------
    n_bins, max_duration:
        TAM geometry (see :class:`~repro.attacks.tam.TamExtractor`).
    hidden, epochs, batch_size, learning_rate, momentum, l2:
        MLP hyperparameters (see :class:`~repro.ml.mlp.MlpClassifier`).
    seed:
        Fixes the MLP's initialisation and shuffling.
    workers:
        Processes for TAM extraction (1 = in-process, 0 = one per
        core; results are bit-identical for any value — wall-clock
        only, so excluded from :meth:`params`).
    """

    name = "tam-mlp"
    seed_kwarg = "seed"

    def __init__(
        self,
        n_bins: int = 64,
        max_duration: float = 10.0,
        hidden: Sequence[int] = (128,),
        epochs: int = 60,
        batch_size: int = 16,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        l2: float = 1e-4,
        seed: int = 0,
        workers: int = 1,
    ) -> None:
        self.workers = workers
        self.extractor = TamExtractor(n_bins=n_bins, max_duration=max_duration)
        self.mlp = MlpClassifier(
            hidden=hidden,
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            momentum=momentum,
            l2=l2,
            seed=seed,
        )
        self.labels_: list = []

    def params(self) -> Dict[str, object]:
        return {
            "n_bins": self.extractor.n_bins,
            "max_duration": self.extractor.max_duration,
            "hidden": list(self.mlp.hidden),
            "epochs": self.mlp.epochs,
            "batch_size": self.mlp.batch_size,
            "learning_rate": self.mlp.learning_rate,
            "momentum": self.mlp.momentum,
            "l2": self.mlp.l2,
            "seed": self.mlp.seed,
        }

    # -- fitting ------------------------------------------------------------

    def fit(self, traces: Sequence[Trace], y: np.ndarray) -> "TamMlpAttack":
        X = self.extractor.extract_many(traces, workers=self.workers)
        return self.fit_features(X, y)

    def fit_features(self, X: np.ndarray, y: np.ndarray) -> "TamMlpAttack":
        """Fit on pre-extracted TAM matrices."""
        self.mlp.fit(X, y)
        return self

    def fit_dataset(self, dataset: Dataset) -> "TamMlpAttack":
        """Fit on a labelled dataset (labels recorded for reporting)."""
        self.labels_ = dataset.labels
        traces, y = dataset.to_arrays()
        return self.fit(traces, y)

    # -- prediction ---------------------------------------------------------

    def predict(self, traces: Sequence[Trace]) -> np.ndarray:
        X = self.extractor.extract_many(traces, workers=self.workers)
        return self.predict_features(X)

    def predict_features(self, X: np.ndarray) -> np.ndarray:
        return self.mlp.predict(X)

    def predict_proba(self, traces: Sequence[Trace]) -> np.ndarray:
        """Softmax class probabilities (open-world thresholding)."""
        X = self.extractor.extract_many(traces, workers=self.workers)
        return self.mlp.predict_proba(X)

    @property
    def history_(self) -> list:
        """Per-epoch mean batch loss of the last training run."""
        return self.mlp.history_
