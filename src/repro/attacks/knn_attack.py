"""A simple feature-space k-NN website-fingerprinting baseline.

This is the Wang-style attack skeleton: z-score-normalised k-FP
features matched by euclidean k-NN.  It is weaker than k-FP's forest
but cheap, and serves as a second attacker for robustness checks of
the defense results.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.attacks.features.kfp import KfpFeatureExtractor
from repro.capture.dataset import Dataset
from repro.capture.trace import Trace
from repro.ml.knn import KNeighborsClassifier
from repro.ml.metrics import accuracy_score


class FeatureKnnAttack:
    """k-NN over normalised k-FP features."""

    def __init__(self, n_neighbors: int = 5) -> None:
        self.extractor = KfpFeatureExtractor()
        self.knn = KNeighborsClassifier(n_neighbors=n_neighbors)
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def _normalise(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._std

    def fit_traces(self, traces: Sequence[Trace], y: np.ndarray) -> "FeatureKnnAttack":
        X = self.extractor.extract_many(traces)
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        # Constant features carry no information; avoid dividing by 0.
        self._std = np.where(std > 0, std, 1.0)
        self.knn.fit(self._normalise(X), y)
        return self

    def fit_dataset(self, dataset: Dataset) -> "FeatureKnnAttack":
        traces, y = dataset.to_arrays()
        return self.fit_traces(traces, y)

    def predict_traces(self, traces: Sequence[Trace]) -> np.ndarray:
        if self._mean is None:
            raise RuntimeError("attack is not fitted")
        X = self.extractor.extract_many(traces)
        return self.knn.predict(self._normalise(X))

    def score_dataset(self, dataset: Dataset) -> float:
        traces, y = dataset.to_arrays()
        return accuracy_score(y, self.predict_traces(traces))
