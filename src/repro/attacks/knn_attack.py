"""A simple feature-space k-NN website-fingerprinting baseline.

This is the Wang-style attack skeleton: z-score-normalised k-FP
features matched by euclidean k-NN.  It is weaker than k-FP's forest
but cheap, and serves as a second attacker for robustness checks of
the defense results.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.attacks.base import TraceAttack
from repro.attacks.features.kfp import KfpFeatureExtractor
from repro.capture.trace import Trace
from repro.ml.knn import KNeighborsClassifier


class FeatureKnnAttack(TraceAttack):
    """k-NN over normalised k-FP features."""

    name = "knn"
    seed_kwarg = None  # brute-force k-NN has no randomness to seed

    def __init__(self, n_neighbors: int = 5) -> None:
        self.extractor = KfpFeatureExtractor()
        self.knn = KNeighborsClassifier(n_neighbors=n_neighbors)
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def params(self) -> Dict[str, object]:
        return {"n_neighbors": self.knn.n_neighbors}

    def _normalise(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._std

    def fit(self, traces: Sequence[Trace], y: np.ndarray) -> "FeatureKnnAttack":
        X = self.extractor.extract_many(traces)
        return self.fit_features(X, y)

    def fit_features(self, X: np.ndarray, y: np.ndarray) -> "FeatureKnnAttack":
        """Fit on pre-extracted k-FP feature matrices."""
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        # Constant features carry no information; avoid dividing by 0.
        self._std = np.where(std > 0, std, 1.0)
        self.knn.fit(self._normalise(X), y)
        return self

    def predict(self, traces: Sequence[Trace]) -> np.ndarray:
        X = self.extractor.extract_many(traces)
        return self.predict_features(X)

    def predict_features(self, X: np.ndarray) -> np.ndarray:
        if self._mean is None:
            raise RuntimeError("attack is not fitted")
        return self.knn.predict(self._normalise(X))
