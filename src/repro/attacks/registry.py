"""The attack taxonomy and factory — the attacker-side mirror of
:mod:`repro.defenses.registry`.

Every registered attack implements the full Attack contract
(:mod:`repro.attacks.base`): ``name``, total ``params()``,
deterministic ``fit``/``predict`` and a ``spec()`` that round-trips
through :func:`attack_from_spec`.  Experiments look attacks up here by
short name instead of hardcoding constructors, so adding an attacker
is one registry entry — every experiment (Table 2, attack robustness,
open world) and the CLI pick it up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.attacks.base import TraceAttack
from repro.attacks.cumul import CumulAttack
from repro.attacks.dl import TamMlpAttack
from repro.attacks.kfp import KFingerprinting
from repro.attacks.knn_attack import FeatureKnnAttack


@dataclass(frozen=True)
class AttackInfo:
    """One row of the attack taxonomy."""

    attack: str
    family: str  # classical | deep-learning-class
    features: str  # what the attack keys on
    implemented_as: str  # class name in repro.attacks
    notes: str = ""


#: The attacker families the reproduction evaluates, by short name.
ATTACK_TAXONOMY: Tuple[AttackInfo, ...] = (
    AttackInfo(
        "kfp", "classical", "timing + size/direction statistics",
        "KFingerprinting",
        "Hayes & Danezis random forest (the paper's Table 2 attacker)",
    ),
    AttackInfo(
        "cumul", "classical", "cumulative size curves (timing-blind)",
        "CumulAttack",
        "Panchenko et al.; linear-SVM variant",
    ),
    AttackInfo(
        "knn", "classical", "k-FP features, euclidean k-NN",
        "FeatureKnnAttack",
        "Wang-style baseline; weaker consumer of the k-FP features",
    ),
    AttackInfo(
        "tam-mlp", "deep-learning-class", "learned over time x direction matrices",
        "TamMlpAttack",
        "TAM representation + from-scratch numpy MLP (DF-style attacker)",
    ),
)

#: The attack registry: short name -> class.  ``build_attack(name,
#: seed, **kwargs)`` round-trips for any configured instance.
#: (:class:`repro.attacks.cca_id.CcaIdentifier` also implements the
#: contract but classifies congestion controllers, not sites, so it
#: stays out of the WF registry.)
ATTACK_REGISTRY: Dict[str, type] = {
    "kfp": KFingerprinting,
    "cumul": CumulAttack,
    "knn": FeatureKnnAttack,
    "tam-mlp": TamMlpAttack,
}


def build_attack(name: str, seed: int = 0, **kwargs) -> TraceAttack:
    """Instantiate an attack by its short name.

    ``kwargs`` are the class's constructor parameters; passing an
    attack's own ``params()`` dict reconstructs it exactly.  ``seed``
    lands on the class's declared ``seed_kwarg`` (``random_state`` for
    the classical attacks, ``seed`` for the DL attack) unless that
    kwarg already arrived explicitly; seedless attacks ignore it.
    """
    try:
        cls = ATTACK_REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown attack {name!r}; choose from {sorted(ATTACK_REGISTRY)}"
        ) from None
    if cls.seed_kwarg is not None:
        kwargs.setdefault(cls.seed_kwarg, seed)
    return cls(**kwargs)


def attack_from_spec(spec: Dict[str, object]) -> TraceAttack:
    """Rebuild an attack from a ``{"name": ..., "params": {...}}`` spec
    (the cache's canonical attack identity)."""
    return build_attack(str(spec["name"]), **dict(spec["params"]))


def implemented_attacks() -> Tuple[str, ...]:
    """Short names of every registered attack, sorted."""
    return tuple(sorted(ATTACK_REGISTRY))
