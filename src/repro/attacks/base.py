"""The Attack contract: what every website-fingerprinting attack
implements.

Mirrors the Defense contract (:mod:`repro.defenses.base`):

* ``name`` — the short registry identifier;
* ``params()`` — the *total* set of constructor parameters, as a
  canonical (JSON-safe) dict: ``build_attack(a.name, **a.params())``
  reconstructs an equivalent attack, and the artifact cache digests
  exactly this dict to key per-attack evaluation cells;
* ``fit(traces, y)`` / ``predict(traces)`` — train on raw traces with
  integer labels, classify raw traces.  Deterministic given
  (``params()``): two attacks with equal specs produce bit-identical
  predictions;
* ``spec()`` — the ``{"name": ..., "params": {...}}`` round-trip form
  consumed by :func:`repro.attacks.registry.attack_from_spec`.

Wall-clock-only knobs (worker counts) are constructor arguments but
stay *out* of ``params()``: results are bit-identical for any value,
so they must not move cache keys.

The historical ``fit_traces`` / ``predict_traces`` spellings remain as
concrete aliases so pre-contract call sites keep working.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence

import numpy as np

from repro.capture.dataset import Dataset
from repro.capture.trace import Trace
from repro.ml.metrics import accuracy_score


class TraceAttack(abc.ABC):
    """A supervised classifier over observed packet sequences."""

    #: Short identifier used in tables, reports and the registry.
    name = "base"

    #: Constructor kwarg that receives the master seed in
    #: :func:`repro.attacks.registry.build_attack` (``None`` for
    #: deterministic attacks with no randomness of their own).
    seed_kwarg: Optional[str] = None

    #: Optional trace-to-vector extractor (``name`` / ``version`` /
    #: ``extract_many``): attacks that expose one also implement
    #: ``fit_features`` / ``predict_features``, letting experiments
    #: cache the extracted matrix independently of the classifier.
    extractor = None

    # -- the contract -------------------------------------------------------

    @abc.abstractmethod
    def params(self) -> Dict[str, object]:
        """Canonical constructor parameters (JSON-safe, total)."""

    @abc.abstractmethod
    def fit(self, traces: Sequence[Trace], y: np.ndarray) -> "TraceAttack":
        """Train on raw traces with integer labels."""

    @abc.abstractmethod
    def predict(self, traces: Sequence[Trace]) -> np.ndarray:
        """Predicted integer labels for raw traces."""

    def spec(self) -> Dict[str, object]:
        """The attack's round-trip identity:
        ``attack_from_spec(a.spec())`` rebuilds an equivalent attack
        (and the cache digests this dict to key evaluation cells)."""
        return {"name": self.name, "params": self.params()}

    # -- dataset conveniences ----------------------------------------------

    def fit_dataset(self, dataset: Dataset) -> "TraceAttack":
        """Fit on a labelled dataset."""
        traces, y = dataset.to_arrays()
        return self.fit(traces, y)

    def score_dataset(self, dataset: Dataset) -> float:
        """Closed-world accuracy on a labelled dataset."""
        traces, y = dataset.to_arrays()
        return accuracy_score(y, self.predict(traces))

    # -- pre-contract spellings --------------------------------------------

    def fit_traces(self, traces: Sequence[Trace], y: np.ndarray) -> "TraceAttack":
        """Alias of :meth:`fit` (the pre-contract spelling)."""
        return self.fit(traces, y)

    def predict_traces(self, traces: Sequence[Trace]) -> np.ndarray:
        """Alias of :meth:`predict` (the pre-contract spelling)."""
        return self.predict(traces)


#: Public alias for the Attack base contract (mirrors
#: ``repro.defenses.base.Defense``).
Attack = TraceAttack
