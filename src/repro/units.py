"""Unit helpers and wire-level constants shared across the package.

All simulation times are in **seconds** (floats) and all sizes are in
**bytes** (ints) unless a name says otherwise.  These helpers exist so
that call sites read naturally (``mbps(100)`` instead of ``100 * 1e6 / 8``)
and so unit mistakes are grep-able.
"""

from __future__ import annotations

# --- wire constants -------------------------------------------------------

#: Standard Ethernet MTU in bytes (IP datagram size).
ETHERNET_MTU = 1500

#: IPv4 header size without options.
IPV4_HEADER = 20

#: TCP header size without options.
TCP_HEADER = 20

#: TCP header size with common options (timestamps) as used by Linux.
TCP_HEADER_TS = 32

#: UDP header size.
UDP_HEADER = 8

#: Default TCP MSS on a 1500-byte-MTU path without timestamps.
DEFAULT_MSS = ETHERNET_MTU - IPV4_HEADER - TCP_HEADER  # 1460

#: Minimum TCP MSS that real-world stacks accept (RFC 879).
MIN_MSS = 536

#: Ethernet frame overhead on the wire: preamble (8) + dst/src/type (14)
#: + FCS (4) + inter-frame gap (12).
ETHERNET_OVERHEAD = 38

#: Largest TSO "super segment" Linux will build (64 KiB minus headers).
MAX_TSO_BYTES = 65536

#: Default maximum number of MSS-sized packets in one TSO segment, as
#: referenced by the paper's Figure 3 (default TSO size of 44 packets).
DEFAULT_TSO_SEGS = 44


# --- rate helpers ---------------------------------------------------------


def bits_per_sec(bits: float) -> float:
    """Return a link rate expressed in bytes/second from bits/second."""
    return bits / 8.0


def kbps(value: float) -> float:
    """Kilobits per second -> bytes per second."""
    return value * 1e3 / 8.0


def mbps(value: float) -> float:
    """Megabits per second -> bytes per second."""
    return value * 1e6 / 8.0


def gbps(value: float) -> float:
    """Gigabits per second -> bytes per second."""
    return value * 1e9 / 8.0


def to_mbps(bytes_per_sec: float) -> float:
    """Bytes per second -> megabits per second."""
    return bytes_per_sec * 8.0 / 1e6


def to_gbps(bytes_per_sec: float) -> float:
    """Bytes per second -> gigabits per second."""
    return bytes_per_sec * 8.0 / 1e9


# --- time helpers ---------------------------------------------------------


def usec(value: float) -> float:
    """Microseconds -> seconds."""
    return value * 1e-6


def msec(value: float) -> float:
    """Milliseconds -> seconds."""
    return value * 1e-3


def to_msec(seconds: float) -> float:
    """Seconds -> milliseconds."""
    return seconds * 1e3


# --- size helpers ---------------------------------------------------------


def kib(value: float) -> int:
    """KiB -> bytes."""
    return int(value * 1024)


def mib(value: float) -> int:
    """MiB -> bytes."""
    return int(value * 1024 * 1024)


def serialization_delay(nbytes: int, rate_bytes_per_sec: float) -> float:
    """Time to clock ``nbytes`` onto a link of the given rate.

    Raises ``ValueError`` for a non-positive rate, because a zero-rate
    link would silently produce ``inf`` times and hang a simulation.
    """
    if rate_bytes_per_sec <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bytes_per_sec}")
    return nbytes / rate_bytes_per_sec
