"""The fuzz campaign driver: sample → run → triage → shrink → quarantine.

:func:`run_fuzz` iterates scenario indices ``0 .. budget-1`` of a
campaign seed, runs each through the invariant oracle, and turns every
raised exception into a finding: bucket it, shrink it to a minimal
spec (re-running the oracle per candidate), and quarantine the
reproducer.  Scenarios are pure functions of ``(seed, index)``, so two
runs of the same campaign produce identical findings, identical
corpora and an identical campaign digest — the determinism the smoke
gate (``benchmarks/smoke_fuzz.py``) asserts.

:class:`~repro.errors.RunTerminated` (Ctrl-C / SIGTERM) is *not* a
finding: it propagates immediately so operator aborts never pollute
the corpus.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import RunTerminated
from repro.fuzz.corpus import QuarantineCorpus, bucket_for, load_reproducer
from repro.fuzz.oracle import DEFAULT_DEADLINE, run_scenario
from repro.fuzz.scenario import (
    ScenarioSpec,
    sample_scenario,
    scenario_from_jsonable,
)
from repro.fuzz.shrink import ShrinkResult, shrink_scenario
from repro.obs import runtime as _obs_runtime


@dataclass
class Finding:
    """One triaged fuzz finding."""

    index: int
    bucket_id: str
    message: str
    invariant: Optional[str]
    reproducer: Optional[str]  # corpus file path, None when shrink-only
    new: bool
    shrink: Optional[ShrinkResult]


@dataclass
class FuzzReport:
    """Everything one campaign produced."""

    seed: int
    budget: int
    scenarios: int = 0
    stalls: int = 0
    eval_skipped: int = 0
    findings: List[Finding] = field(default_factory=list)
    campaign_digest: str = ""
    corpus_digest: str = ""

    @property
    def new_entries(self) -> int:
        return sum(1 for f in self.findings if f.new)

    def bucket_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.bucket_id] = out.get(finding.bucket_id, 0) + 1
        return out


def _count(name: str, n: int = 1) -> None:
    obs = _obs_runtime.session()
    if obs is not None:
        obs.registry.counter(name).add(n)


def _still_fails(
    bucket_id: str, deadline: Optional[float]
) -> Callable[[ScenarioSpec], bool]:
    """The shrinker's acceptance oracle: same bucket, or reject."""

    def check(candidate: ScenarioSpec) -> bool:
        try:
            run_scenario(candidate, deadline=deadline)
        except RunTerminated:
            raise
        except Exception as exc:  # noqa: BLE001 — triage needs everything
            return bucket_for(exc).id == bucket_id
        return False

    return check


def run_fuzz(
    seed: int,
    budget: int,
    corpus_dir,
    shrink: bool = True,
    deadline: Optional[float] = DEFAULT_DEADLINE,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run scenarios ``0 .. budget-1`` of campaign ``seed``.

    Returns the full :class:`FuzzReport`; new reproducers land under
    ``corpus_dir`` as a side effect.  The campaign digest hashes every
    scenario's outcome (stage digests for passes, bucket ids for
    findings), so determinism is checkable without comparing corpora.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    corpus = QuarantineCorpus(corpus_dir)
    report = FuzzReport(seed=seed, budget=budget)
    campaign = hashlib.sha256()
    say = progress or (lambda _msg: None)
    for index in range(budget):
        spec = sample_scenario(seed, index)
        report.scenarios += 1
        _count("fuzz.scenarios")
        try:
            outcome = run_scenario(spec, deadline=deadline)
        except RunTerminated:
            raise
        except Exception as exc:  # noqa: BLE001 — every escape is a finding
            bucket = bucket_for(exc)
            _count("fuzz.findings")
            say(f"[{index}] FINDING {bucket.id}: {exc}")
            shrink_result: Optional[ShrinkResult] = None
            minimal = spec
            if shrink:
                shrink_result = shrink_scenario(
                    spec, _still_fails(bucket.id, deadline)
                )
                minimal = shrink_result.spec
            audit = {
                "rounds": shrink_result.rounds if shrink_result else 0,
                "tried": shrink_result.tried if shrink_result else 0,
                "accepted": shrink_result.accepted if shrink_result else 0,
            }
            entry = corpus.add(exc, minimal, spec, audit)
            report.findings.append(
                Finding(
                    index=index,
                    bucket_id=bucket.id,
                    message=str(exc),
                    invariant=getattr(exc, "invariant", None),
                    reproducer=str(entry.path),
                    new=entry.new,
                    shrink=shrink_result,
                )
            )
            campaign.update(f"{index}:finding:{bucket.id}".encode("utf-8"))
            continue
        report.stalls += outcome.stalls
        if outcome.eval_skipped is not None:
            report.eval_skipped += 1
            _count("fuzz.eval_skipped")
        if outcome.stalls:
            _count("fuzz.stalls", outcome.stalls)
        campaign.update(f"{index}:ok:{outcome.digest}".encode("utf-8"))
    report.campaign_digest = campaign.hexdigest()
    report.corpus_digest = corpus.digest()
    return report


@dataclass
class ReplayResult:
    """Outcome of replaying one stored reproducer."""

    path: str
    recorded_bucket: str
    reproduced: bool
    observed_bucket: Optional[str]
    message: Optional[str]


def replay_reproducer(
    path, deadline: Optional[float] = DEFAULT_DEADLINE
) -> ReplayResult:
    """Re-run a quarantined scenario; report whether its bug is back.

    ``reproduced`` is True when the recorded crash bucket fires again
    (the bug is still live).  A clean pass — or a *different* failure,
    which deserves its own fuzz finding — counts as not reproduced.
    """
    data = load_reproducer(path)
    recorded = data["bucket"]["id"]
    spec = scenario_from_jsonable(data["scenario"])
    try:
        run_scenario(spec, deadline=deadline)
    except RunTerminated:
        raise
    except Exception as exc:  # noqa: BLE001 — replay compares buckets
        observed = bucket_for(exc)
        return ReplayResult(
            path=str(path),
            recorded_bucket=recorded,
            reproduced=observed.id == recorded,
            observed_bucket=observed.id,
            message=str(exc),
        )
    return ReplayResult(
        path=str(path),
        recorded_bucket=recorded,
        reproduced=False,
        observed_bucket=None,
        message=None,
    )
