"""Composite fuzz scenarios: what one adversarial pipeline run looks like.

A :class:`ScenarioSpec` is a frozen, JSON-round-trippable description
of one end-to-end pipeline execution — dataset source (simulated page
loads or synthetic adversarial traces) × defense × attack × fault
schedule × link/CCA parameters — deliberately biased toward the
pathological corners the golden grid never visits: zero-object pages,
1-byte and giant objects, 100 % loss windows, (near-)zero-bandwidth
intervals, empty and single-packet traces.

:func:`sample_scenario` draws the spec for ``(campaign seed, index)``
from a position-derived generator, the same determinism discipline as
:func:`repro.web.pageload.visit_seed_rng`: scenario *i* of seed *s* is
a pure function of ``(s, i)``, independent of every other scenario, so
fuzz campaigns shard, resume and replay bit-identically.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.capture.trace import IN, OUT, Trace
from repro.simnet.faults import (
    BandwidthScheduleSpec,
    BlackoutSpec,
    DuplicateSpec,
    FaultSpec,
    GilbertElliottSpec,
    LinkFlapSpec,
    ReorderSpec,
)
from repro.web.objects import ObjectClass, SiteProfile
from repro.web.sites import SITE_CATALOG

#: Derivation salt for scenario sampling (keeps fuzz randomness
#: disjoint from visit/trial/profile streams).
FUZZ_SALT = 0xF0225

#: Dataset source kinds.
SOURCE_SIMULATED = "simulated"
SOURCE_SYNTHETIC = "synthetic"

#: Site kinds beyond the catalog/generated families: the pathological
#: page shapes the paper's pipeline should survive.
SITE_KINDS = ("catalog", "generated", "zero-object", "one-byte", "giant-object")

#: Synthetic adversarial trace families (degenerate inputs that cannot
#: come out of a page load, e.g. empty or single-packet traces).
SYNTHETIC_KINDS = (
    "empty",
    "single-packet",
    "one-direction-out",
    "one-direction-in",
    "equal-times",
    "giant-sizes",
    "mixed",
)

_FAULT_SPEC_CLASSES = {
    cls.__name__: cls
    for cls in (
        GilbertElliottSpec,
        LinkFlapSpec,
        BlackoutSpec,
        ReorderSpec,
        DuplicateSpec,
        BandwidthScheduleSpec,
    )
}


@dataclass(frozen=True)
class SiteSpec:
    """One site of a simulated scenario.

    ``kind`` selects the profile family; ``index`` picks the member
    (catalog position or generator index; unused for the pathological
    kinds, which are single fixed profiles).
    """

    kind: str = "catalog"
    index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SITE_KINDS:
            raise ValueError(f"unknown site kind {self.kind!r}")

    def label(self) -> str:
        if self.kind == "catalog":
            return sorted(SITE_CATALOG)[self.index % len(SITE_CATALOG)]
        if self.kind == "generated":
            from repro.web.generator import site_name

            return site_name(self.index)
        return f"{self.kind}.fuzz"

    def profile(self) -> SiteProfile:
        """The concrete :class:`SiteProfile` this spec names."""
        if self.kind == "catalog":
            return SITE_CATALOG[self.label()]
        if self.kind == "generated":
            from repro.web.generator import generate_profile

            return generate_profile(0, self.index)
        if self.kind == "zero-object":
            # Handshake + HTML and nothing else: the smallest real page.
            return SiteProfile(
                name=self.label(),
                html_log_mean=np.log(2500.0),
                html_log_sigma=0.05,
                object_classes=[],
                dependency_rounds=0,
            )
        if self.kind == "one-byte":
            # Dozens of 1-byte objects: per-packet overhead dominates.
            return SiteProfile(
                name=self.label(),
                html_log_mean=np.log(2500.0),
                html_log_sigma=0.05,
                object_classes=[
                    ObjectClass(
                        name="one-byte",
                        count_mean=40,
                        count_jitter=0.2,
                        log_mean=0.0,
                        log_sigma=0.0,
                        min_size=1,
                        max_size=1,
                    )
                ],
                dependency_rounds=2,
            )
        # giant-object: one object at the generator's size ceiling.
        return SiteProfile(
            name=self.label(),
            html_log_mean=np.log(4000.0),
            html_log_sigma=0.05,
            object_classes=[
                ObjectClass(
                    name="giant",
                    count_mean=1,
                    count_jitter=0.0,
                    log_mean=np.log(4 * 1024 * 1024),
                    log_sigma=0.0,
                    min_size=4 * 1024 * 1024,
                    max_size=4 * 1024 * 1024,
                )
            ],
            dependency_rounds=1,
        )


@dataclass(frozen=True)
class SyntheticSpec:
    """One family of synthetic adversarial traces."""

    kind: str = "empty"
    n_traces: int = 2
    n_packets: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SYNTHETIC_KINDS:
            raise ValueError(f"unknown synthetic kind {self.kind!r}")
        if self.n_traces < 1:
            raise ValueError(f"n_traces must be >= 1, got {self.n_traces}")
        if self.n_packets < 0:
            raise ValueError(f"n_packets must be >= 0, got {self.n_packets}")

    def build_traces(self, rng: np.random.Generator) -> List[Trace]:
        """Materialise the family's traces (deterministic per rng)."""
        return [self._one(rng) for _ in range(self.n_traces)]

    def _one(self, rng: np.random.Generator) -> Trace:
        if self.kind == "empty":
            return Trace.empty()
        if self.kind == "single-packet":
            return Trace(
                np.array([float(rng.uniform(0, 0.1))]),
                np.array([OUT if rng.random() < 0.5 else IN], dtype=np.int8),
                np.array([int(rng.integers(1, 1501))], dtype=np.int64),
            )
        n = max(1, self.n_packets)
        times = np.sort(rng.uniform(0.0, 2.0, size=n))
        sizes = rng.integers(1, 1501, size=n).astype(np.int64)
        if self.kind == "one-direction-out":
            dirs = np.full(n, OUT, dtype=np.int8)
        elif self.kind == "one-direction-in":
            dirs = np.full(n, IN, dtype=np.int8)
        else:
            dirs = np.where(rng.random(n) < 0.5, OUT, IN).astype(np.int8)
        if self.kind == "equal-times":
            times = np.zeros(n)
        if self.kind == "giant-sizes":
            # 1 MiB packets: far beyond any MTU, yet small enough for
            # byte-materialising defenses to re-chunk within their
            # emulation budget.  (Near-int64 sizes are rejected by that
            # budget with a typed TraceError — unit-tested, not fuzzed.)
            sizes = np.full(n, 2**20, dtype=np.int64)
        return Trace(times, dirs, sizes)


@dataclass(frozen=True)
class ScenarioSpec:
    """One composite fuzz scenario (frozen, hashable, JSON-safe).

    ``seed``/``index`` are the campaign coordinates the scenario was
    sampled at; they also derive every downstream seed (visits,
    defenses, attacks), so replaying a stored spec reproduces the run
    bit-identically.
    """

    seed: int
    index: int
    source: str = SOURCE_SIMULATED
    sites: Tuple[SiteSpec, ...] = ()
    synthetic: Tuple[SyntheticSpec, ...] = ()
    n_samples: int = 2
    # Link / CCA parameters (the PageLoadConfig axis).
    rate_mbps: float = 50.0
    rtt_ms: float = 30.0
    loss_rate: float = 0.0
    buffer_bdp: float = 1.5
    cca: str = "cubic"
    max_duration: float = 8.0
    fault: Optional[FaultSpec] = None
    # Pipeline stages.
    defense: str = "original"
    attack: str = "kfp"
    sanitize: bool = True
    check_workers: bool = False

    def __post_init__(self) -> None:
        if self.source not in (SOURCE_SIMULATED, SOURCE_SYNTHETIC):
            raise ValueError(f"unknown source {self.source!r}")
        if self.source == SOURCE_SIMULATED and not self.sites:
            raise ValueError("simulated scenarios need at least one site")
        if self.source == SOURCE_SYNTHETIC and not self.synthetic:
            raise ValueError("synthetic scenarios need at least one family")


# -- JSON round trip -----------------------------------------------------------


def _fault_to_jsonable(fault: Optional[FaultSpec]) -> Optional[list]:
    if fault is None:
        return None
    out = []
    for spec in fault.specs:
        entry = {"kind": type(spec).__name__}
        entry.update(dataclasses.asdict(spec))
        out.append(entry)
    return out


def _fault_from_jsonable(data: Optional[list]) -> Optional[FaultSpec]:
    if data is None:
        return None
    specs = []
    for entry in data:
        entry = dict(entry)
        cls = _FAULT_SPEC_CLASSES[entry.pop("kind")]
        if cls is BandwidthScheduleSpec:
            entry["stages"] = tuple(tuple(stage) for stage in entry["stages"])
        specs.append(cls(**entry))
    return FaultSpec(tuple(specs))


def scenario_to_jsonable(spec: ScenarioSpec) -> Dict[str, object]:
    """Canonical JSON-safe dict; :func:`scenario_from_jsonable` inverts."""
    return {
        "seed": spec.seed,
        "index": spec.index,
        "source": spec.source,
        "sites": [dataclasses.asdict(s) for s in spec.sites],
        "synthetic": [dataclasses.asdict(s) for s in spec.synthetic],
        "n_samples": spec.n_samples,
        "rate_mbps": spec.rate_mbps,
        "rtt_ms": spec.rtt_ms,
        "loss_rate": spec.loss_rate,
        "buffer_bdp": spec.buffer_bdp,
        "cca": spec.cca,
        "max_duration": spec.max_duration,
        "fault": _fault_to_jsonable(spec.fault),
        "defense": spec.defense,
        "attack": spec.attack,
        "sanitize": spec.sanitize,
        "check_workers": spec.check_workers,
    }


def scenario_from_jsonable(data: Dict[str, object]) -> ScenarioSpec:
    """Rebuild a :class:`ScenarioSpec` from its canonical dict."""
    return ScenarioSpec(
        seed=int(data["seed"]),
        index=int(data["index"]),
        source=str(data["source"]),
        sites=tuple(SiteSpec(**s) for s in data["sites"]),
        synthetic=tuple(SyntheticSpec(**s) for s in data["synthetic"]),
        n_samples=int(data["n_samples"]),
        rate_mbps=float(data["rate_mbps"]),
        rtt_ms=float(data["rtt_ms"]),
        loss_rate=float(data["loss_rate"]),
        buffer_bdp=float(data["buffer_bdp"]),
        cca=str(data["cca"]),
        max_duration=float(data["max_duration"]),
        fault=_fault_from_jsonable(data["fault"]),
        defense=str(data["defense"]),
        attack=str(data["attack"]),
        sanitize=bool(data["sanitize"]),
        check_workers=bool(data["check_workers"]),
    )


# -- the sampler ---------------------------------------------------------------


def scenario_rng(seed: int, index: int) -> np.random.Generator:
    """The position-derived generator for scenario ``(seed, index)``."""
    return np.random.default_rng([FUZZ_SALT, seed, index])


def _choice(rng: np.random.Generator, options) -> object:
    return options[int(rng.integers(0, len(options)))]


def _sample_fault(rng: np.random.Generator, max_duration: float) -> Optional[FaultSpec]:
    """Draw a fault schedule, biased toward the hostile corners."""
    roll = rng.random()
    if roll < 0.35:
        return None
    specs: List[object] = []
    n_faults = 1 if rng.random() < 0.7 else 2
    for _ in range(n_faults):
        kind = _choice(
            rng,
            (
                "bursty",
                "flap",
                "flap-degenerate",
                "blackout",
                "blackout-total",
                "schedule",
                "schedule-crawl",
                "reorder",
                "duplicate",
            ),
        )
        if kind == "bursty":
            specs.append(
                GilbertElliottSpec(
                    p_enter_bad=float(rng.uniform(0.005, 0.08)),
                    p_exit_bad=float(rng.uniform(0.1, 0.5)),
                    loss_bad=float(rng.uniform(0.2, 1.0)),
                )
            )
        elif kind == "flap":
            specs.append(
                LinkFlapSpec(
                    up_mean=float(rng.uniform(0.2, 4.0)),
                    down_mean=float(rng.uniform(0.01, 0.5)),
                )
            )
        elif kind == "flap-degenerate":
            # Zero-duration phases: pinned-up (no-op) or pinned-down
            # (a 100 % loss window covering the whole load).
            if rng.random() < 0.5:
                specs.append(LinkFlapSpec(up_mean=0.0, down_mean=1.0))
            else:
                specs.append(LinkFlapSpec(up_mean=1.0, down_mean=0.0))
        elif kind == "blackout":
            start = float(rng.uniform(0.0, max_duration * 0.5))
            specs.append(
                BlackoutSpec(
                    start=start,
                    duration=float(rng.uniform(0.0, max_duration * 0.5)),
                )
            )
        elif kind == "blackout-total":
            # 100 % loss from t=0 past the deadline: nothing gets through.
            specs.append(BlackoutSpec(start=0.0, duration=max_duration * 2.0))
        elif kind == "schedule":
            t1 = float(rng.uniform(0.0, max_duration * 0.5))
            # Back-to-back segments: two stages at the same instant
            # (last declared wins) plus a recovery stage.
            specs.append(
                BandwidthScheduleSpec(
                    stages=(
                        (t1, float(rng.uniform(0.2, 1.0))),
                        (t1, float(rng.uniform(0.05, 0.5))),
                        (t1 + float(rng.uniform(0.1, 2.0)), 1.0),
                    )
                )
            )
        elif kind == "schedule-crawl":
            # Effectively zero bandwidth for a window (the fuzzer's
            # "zero-bandwidth interval": factors must stay positive, so
            # the corner is a 1e-3 crawl — "fully down" is a flap).
            t1 = float(rng.uniform(0.0, max_duration * 0.3))
            specs.append(
                BandwidthScheduleSpec(
                    stages=(
                        (t1, 1e-3),
                        (t1 + float(rng.uniform(0.5, 2.0)), 1.0),
                    )
                )
            )
        elif kind == "reorder":
            specs.append(
                ReorderSpec(
                    prob=float(rng.uniform(0.005, 0.05)),
                    delay_low=0.001,
                    delay_high=float(rng.uniform(0.005, 0.05)),
                )
            )
        else:
            specs.append(DuplicateSpec(prob=float(rng.uniform(0.002, 0.03))))
    return FaultSpec(tuple(specs))


def sample_scenario(seed: int, index: int) -> ScenarioSpec:
    """Scenario ``index`` of campaign ``seed`` — a pure function of its
    coordinates (the fuzzing analogue of ``visit_seed_rng``)."""
    rng = scenario_rng(seed, index)
    from repro.attacks.registry import implemented_attacks
    from repro.defenses.registry import implemented_defenses

    attack = str(_choice(rng, implemented_attacks()))
    defense = str(_choice(rng, implemented_defenses()))
    sanitize = rng.random() < 0.7
    check_workers = index % 17 == 0

    if rng.random() < 0.55:
        # Mostly two sites so the eval stage (>= 2 classes) gets real
        # coverage; single-site scenarios still appear to exercise the
        # skip path.
        n_sites = 2 if rng.random() < 0.75 else 1
        sites = []
        for _ in range(n_sites):
            kind = str(
                _choice(
                    rng,
                    (
                        "catalog",
                        "catalog",
                        "generated",
                        "generated",
                        "zero-object",
                        "one-byte",
                        "giant-object",
                    ),
                )
            )
            sites.append(SiteSpec(kind=kind, index=int(rng.integers(0, 500))))
        max_duration = 8.0
        return ScenarioSpec(
            seed=seed,
            index=index,
            source=SOURCE_SIMULATED,
            sites=tuple(sites),
            n_samples=int(rng.integers(2, 5)),
            rate_mbps=float(_choice(rng, (0.5, 2.0, 20.0, 50.0, 200.0))),
            rtt_ms=float(_choice(rng, (2.0, 30.0, 120.0, 300.0))),
            loss_rate=float(_choice(rng, (0.0, 0.0, 0.02, 0.2))),
            buffer_bdp=float(_choice(rng, (0.25, 1.5, 4.0))),
            cca=str(_choice(rng, ("cubic", "reno", "bbr"))),
            max_duration=max_duration,
            fault=_sample_fault(rng, max_duration),
            defense=defense,
            attack=attack,
            sanitize=sanitize,
            check_workers=check_workers,
        )

    # Degenerate families rarely survive the sanitizer (that's what
    # makes them degenerate), so synthetic scenarios sanitize less
    # often — otherwise the defend/features/eval stages would almost
    # never see these trace shapes.
    sanitize = rng.random() < 0.35
    n_families = 1 if rng.random() < 0.2 else 2
    families = []
    for fam in range(n_families):
        if fam == 1 and rng.random() < 0.5:
            # Pair a degenerate family with a substantial mixed one so
            # synthetic scenarios regularly survive sanitisation with
            # two classes and reach the eval stage.
            kind = "mixed"
            n_packets = int(_choice(rng, (40, 200)))
        else:
            kind = str(_choice(rng, SYNTHETIC_KINDS))
            n_packets = int(_choice(rng, (1, 2, 5, 40, 200)))
        families.append(
            SyntheticSpec(
                kind=kind,
                n_traces=int(rng.integers(2, 7)),
                n_packets=n_packets,
            )
        )
    return ScenarioSpec(
        seed=seed,
        index=index,
        source=SOURCE_SYNTHETIC,
        synthetic=tuple(families),
        n_samples=1,
        defense=defense,
        attack=attack,
        sanitize=sanitize,
        check_workers=check_workers,
    )
