"""Delta-debugging shrinker: minimise a failing scenario spec.

Given a :class:`~repro.fuzz.scenario.ScenarioSpec` that triggers a
finding, :func:`shrink_scenario` applies component-wise minimisation —
drop the fault schedule, neutralise the defense, halve the workload,
reset link parameters — re-running the oracle after each candidate
edit and keeping it only if the *same crash bucket* still reproduces.
Iterating to a fixpoint yields the minimal reproducer stored in the
quarantine corpus: typically one site (or one synthetic family), one
sample, no fault, no defense — whatever actually drives the bug.

Everything is deterministic: candidates are tried in a fixed order and
acceptance depends only on the (replayable) oracle outcome, so
shrinking the same finding twice yields the same minimal spec.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.fuzz.scenario import SOURCE_SIMULATED, ScenarioSpec

#: Shrink rounds before giving up on reaching a fixpoint.  Each round
#: is one sweep over the current spec's single-edit candidates and each
#: acceptance starts a new round, so the bound also caps accepted edits;
#: specs have ~10 shrinkable components, so 12 rounds always converge.
MAX_ROUNDS = 12

#: The cheapest attack, used when the finding survives an attack swap.
CHEAPEST_ATTACK = "knn"


@dataclass
class ShrinkResult:
    """The minimised spec plus an audit trail of the search."""

    spec: ScenarioSpec
    rounds: int
    tried: int
    accepted: int


def _candidates(spec: ScenarioSpec) -> List[ScenarioSpec]:
    """Single-edit simplifications of ``spec``, strongest first."""
    replace = dataclasses.replace
    out: List[ScenarioSpec] = []
    if spec.fault is not None:
        out.append(replace(spec, fault=None))
        if len(spec.fault.specs) > 1:
            for i in range(len(spec.fault.specs)):
                kept = tuple(
                    s for j, s in enumerate(spec.fault.specs) if j != i
                )
                out.append(
                    replace(spec, fault=dataclasses.replace(spec.fault, specs=kept))
                )
    if spec.defense != "original":
        out.append(replace(spec, defense="original"))
    if spec.attack != CHEAPEST_ATTACK:
        out.append(replace(spec, attack=CHEAPEST_ATTACK))
    if spec.sanitize:
        out.append(replace(spec, sanitize=False))
    if spec.check_workers:
        out.append(replace(spec, check_workers=False))
    if spec.source == SOURCE_SIMULATED:
        if len(spec.sites) > 1:
            out.append(replace(spec, sites=spec.sites[:1]))
        if spec.n_samples > 1:
            out.append(replace(spec, n_samples=max(1, spec.n_samples // 2)))
        defaults = dict(
            rate_mbps=50.0, rtt_ms=30.0, loss_rate=0.0, buffer_bdp=1.5, cca="cubic"
        )
        if any(getattr(spec, k) != v for k, v in defaults.items()):
            out.append(replace(spec, **defaults))
        if spec.max_duration > 4.0:
            out.append(replace(spec, max_duration=4.0))
    else:
        if len(spec.synthetic) > 1:
            out.append(replace(spec, synthetic=spec.synthetic[:1]))
        halved = tuple(
            dataclasses.replace(
                fam,
                n_traces=max(1, fam.n_traces // 2),
                n_packets=fam.n_packets // 2,
            )
            for fam in spec.synthetic
        )
        if halved != spec.synthetic:
            out.append(replace(spec, synthetic=halved))
    return out


def shrink_scenario(
    spec: ScenarioSpec,
    still_fails: Callable[[ScenarioSpec], bool],
    max_rounds: int = MAX_ROUNDS,
) -> ShrinkResult:
    """Minimise ``spec`` while ``still_fails`` keeps returning True.

    ``still_fails`` re-runs the oracle on a candidate and reports
    whether the *same* crash bucket reproduces (the runner supplies
    this closure; a candidate that fails differently — or passes — is
    rejected).  ``still_fails`` must never raise.
    """
    current = spec
    tried = accepted = rounds = 0
    # One round = a full sweep over the current spec's candidates.  An
    # accepted edit restarts the sweep from the simplified spec (its
    # candidate list differs); a sweep with no acceptance is the
    # fixpoint.
    while rounds < max_rounds:
        rounds += 1
        improved = False
        for candidate in _candidates(current):
            tried += 1
            if still_fails(candidate):
                current = candidate
                accepted += 1
                improved = True
                break
        if not improved:
            break
    return ShrinkResult(spec=current, rounds=rounds, tried=tried, accepted=accepted)
