"""Deterministic scenario fuzzing for the whole pipeline.

``repro.fuzz`` samples composite scenarios (site profile × defense ×
attack × fault schedule × link parameters, biased toward pathological
corners), runs each through capture → sanitize → defend → features →
eval under a runtime invariant oracle, shrinks failures to minimal
JSON reproducers and quarantines them in a crash-bucketed corpus.

Entry points: :func:`repro.fuzz.runner.run_fuzz` (a campaign),
:func:`repro.fuzz.runner.replay_reproducer` (one stored finding), and
the ``repro fuzz run / replay / corpus`` CLI.
"""

from repro.fuzz.corpus import QuarantineCorpus, bucket_for, load_reproducer
from repro.fuzz.oracle import (
    HangDetected,
    InvariantViolation,
    ScenarioOutcome,
    run_scenario,
)
from repro.fuzz.runner import FuzzReport, replay_reproducer, run_fuzz
from repro.fuzz.scenario import (
    ScenarioSpec,
    sample_scenario,
    scenario_from_jsonable,
    scenario_to_jsonable,
)
from repro.fuzz.shrink import shrink_scenario

__all__ = [
    "FuzzReport",
    "HangDetected",
    "InvariantViolation",
    "QuarantineCorpus",
    "ScenarioOutcome",
    "ScenarioSpec",
    "bucket_for",
    "load_reproducer",
    "replay_reproducer",
    "run_fuzz",
    "run_scenario",
    "sample_scenario",
    "scenario_from_jsonable",
    "scenario_to_jsonable",
    "shrink_scenario",
]
