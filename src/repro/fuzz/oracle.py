"""The runtime invariant oracle: execute one scenario, check everything.

:func:`run_scenario` drives a :class:`~repro.fuzz.scenario.ScenarioSpec`
through the full pipeline — capture → sanitize → defend → features →
eval — with invariant checks at every stage boundary:

* **Conservation** — every link's :class:`LinkStats` accounting
  balances (offered = drops + queued + in-service + in-flight +
  delivered), through faults, duplication and reordering alike.
* **Stack sanity** — TCP sequence space (``snd_una <= snd_nxt``,
  non-negative bytes in flight) and pacer state (non-negative extra
  gap, finite next-allowed time) on both endpoints after every visit.
* **Trace well-formedness** — finite, non-negative, non-decreasing
  timestamps; ±1 directions; positive sizes.
* **Stage accounting** — the sanitizer's kept/dropped counts sum to
  the input count; defenses only add overhead (bandwidth overhead
  ≥ -100 %) and stay deterministic across equal-seed instances; the
  ``original`` defense is the identity.
* **Numeric hygiene** — finite feature matrices and scores in [0, 1];
  TAM's count-conservation (bins sum to the packet count); serial vs
  worker-pool feature extraction digests match.

A violated invariant raises :class:`InvariantViolation`; a wall-clock
deadline turns silent hangs into :class:`HangDetected` findings.  The
oracle deliberately catches nothing — the runner owns triage.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.capture.dataset import Dataset
from repro.capture.serialize import dataset_content_digest
from repro.capture.trace import Trace
from repro.errors import ReproError
from repro.fuzz.scenario import (
    SOURCE_SIMULATED,
    ScenarioSpec,
    FUZZ_SALT,
)
from repro.ml.metrics import accuracy_score

#: Default wall-clock budget for one scenario, seconds.  Generous —
#: honest scenarios finish in well under a second; only a genuine hang
#: (an event-loop livelock, a diverging retransmit storm) hits it, so
#: campaign results stay effectively deterministic.
DEFAULT_DEADLINE = 120.0

#: Deliberately tiny attack configurations: the oracle checks numeric
#: hygiene and contract conformance, not accuracy, so classifiers run
#: at the smallest size that still exercises their full code path.
TINY_ATTACK_KWARGS: Dict[str, Dict[str, object]] = {
    "kfp": {"n_estimators": 6},
    "cumul": {"n_interp": 20, "epochs": 4},
    "knn": {"n_neighbors": 1},
    "tam-mlp": {"n_bins": 16, "hidden": (8,), "epochs": 2, "batch_size": 8},
}


class InvariantViolation(ReproError):
    """A runtime invariant failed during a fuzz scenario."""

    def __init__(self, invariant: str, detail: str) -> None:
        super().__init__(f"invariant {invariant!r} violated: {detail}")
        self.invariant = invariant
        self.detail = detail


class HangDetected(ReproError):
    """A scenario exceeded its wall-clock deadline."""

    def __init__(self, stage: str, deadline: float) -> None:
        super().__init__(
            f"scenario exceeded its {deadline:.0f}s wall-clock deadline "
            f"during {stage!r}"
        )
        self.stage = stage
        self.deadline = deadline


@dataclass
class ScenarioOutcome:
    """What one oracle-checked scenario produced (no finding raised)."""

    spec: ScenarioSpec
    digest: str
    n_traces: int
    stalls: int
    eval_skipped: Optional[str]
    stages: Dict[str, object] = field(default_factory=dict)


def _check(condition: bool, invariant: str, detail: str) -> None:
    if not condition:
        raise InvariantViolation(invariant, detail)


class _Deadline:
    """Wall-clock watchdog shared across a scenario's stages."""

    def __init__(self, seconds: Optional[float]) -> None:
        self._seconds = seconds
        self._start = time.monotonic()
        self.stage = "setup"

    def check(self) -> None:
        if self._seconds is None:
            return
        if time.monotonic() - self._start > self._seconds:
            raise HangDetected(self.stage, self._seconds)


# -- per-visit stack checks ----------------------------------------------------


def check_trace(trace: Trace, context: str) -> None:
    """Trace well-formedness, checked independently of the Trace
    constructor (the oracle does not trust producer-side validation)."""
    times, dirs, sizes = trace.times, trace.directions, trace.sizes
    _check(
        len(times) == len(dirs) == len(sizes),
        "trace.aligned",
        f"{context}: column lengths differ",
    )
    if len(times) == 0:
        return
    _check(
        bool(np.isfinite(times).all()),
        "trace.finite-times",
        f"{context}: non-finite timestamp",
    )
    _check(
        float(times[0]) >= 0.0,
        "trace.nonnegative-times",
        f"{context}: first timestamp {times[0]!r} < 0",
    )
    _check(
        bool((np.diff(times) >= -1e-12).all()),
        "trace.monotonic-times",
        f"{context}: timestamps decrease",
    )
    _check(
        bool(np.isin(dirs, (-1, 1)).all()),
        "trace.directions",
        f"{context}: direction outside {{-1, +1}}",
    )
    _check(
        bool((sizes > 0).all()),
        "trace.positive-sizes",
        f"{context}: non-positive packet size",
    )


def check_flow(flow, context: str) -> None:
    """Post-run stack invariants on a finished page-load flow."""
    for direction, stats in flow.link_stats().items():
        _check(
            stats.conserved(),
            "link.conservation",
            f"{context}: {direction} link accounting unbalanced: {stats}",
        )
    for side in ("client", "server"):
        ep = getattr(flow, side)
        _check(
            ep.snd_una <= ep.snd_nxt,
            "tcp.sequence-space",
            f"{context}: {side} snd_una {ep.snd_una} > snd_nxt {ep.snd_nxt}",
        )
        _check(
            ep.bytes_in_flight >= 0,
            "tcp.bytes-in-flight",
            f"{context}: {side} bytes_in_flight {ep.bytes_in_flight} < 0",
        )
        pacer = ep.pacer
        _check(
            pacer.total_extra_gap >= 0.0,
            "pacer.gap-nonnegative",
            f"{context}: {side} total_extra_gap {pacer.total_extra_gap}",
        )
        _check(
            np.isfinite(pacer.next_allowed) and pacer.next_allowed >= 0.0,
            "pacer.next-allowed",
            f"{context}: {side} next_allowed {pacer.next_allowed!r}",
        )
        _check(
            pacer.scheduled_segments >= 0,
            "pacer.scheduled-segments",
            f"{context}: {side} scheduled_segments {pacer.scheduled_segments}",
        )


def check_visit(flow, result, config, context: str) -> None:
    """All per-visit invariants: stack state, result sanity, trace."""
    check_flow(flow, context)
    _check(
        0.0 <= result.sim_time <= config.max_duration + 10.0,
        "visit.sim-time",
        f"{context}: sim_time {result.sim_time!r} outside "
        f"[0, max_duration + drain]",
    )
    _check(
        result.events_processed >= 0,
        "visit.events",
        f"{context}: negative event count",
    )
    _check(
        result.bytes_received >= 0,
        "visit.bytes",
        f"{context}: negative bytes_received",
    )
    check_trace(result.trace, context)


# -- stage helpers -------------------------------------------------------------


def _feature_extractor(attack_name: str):
    """The feature extractor the oracle audits for ``attack_name``
    (``None`` when the attack has no batch extractor worth checking)."""
    if attack_name in ("kfp", "knn"):
        from repro.attacks.features.kfp import KfpFeatureExtractor

        return KfpFeatureExtractor()
    if attack_name == "tam-mlp":
        from repro.attacks.tam import TamExtractor

        return TamExtractor(n_bins=16)
    if attack_name == "cumul":
        from repro.attacks.cumul import CumulAttack

        return _CumulExtractor(CumulAttack(n_interp=20))
    return None


class _CumulExtractor:
    """Adapts CUMUL's per-trace features to the extract_many shape."""

    def __init__(self, attack) -> None:
        self._attack = attack

    def extract_many(self, traces, workers: int = 1) -> np.ndarray:
        return self._attack._features(list(traces))


def _matrix_digest(X: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(X, dtype=np.float64).tobytes()
    ).hexdigest()


def _canonical_digest(payload: object) -> str:
    from repro.cache.canonical import jsonable

    encoded = json.dumps(jsonable(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _collect_simulated(
    spec: ScenarioSpec, deadline: _Deadline
) -> Tuple[Dataset, int]:
    """Run the scenario's page loads under per-visit stack checks."""
    from repro.web.pageload import PageLoadConfig, load_page_result, visit_seed_rng

    config = PageLoadConfig(
        rate_mbps=spec.rate_mbps,
        rtt_ms=spec.rtt_ms,
        loss_rate=spec.loss_rate,
        buffer_bdp=spec.buffer_bdp,
        cc=spec.cca,
        max_duration=spec.max_duration,
        fault_spec=spec.fault,
    )
    # Visit randomness derives from the scenario's campaign coordinates
    # so shrinking (dropping sites/samples) replays surviving visits
    # bit-identically.
    visit_seed = spec.seed * 1_000_003 + spec.index
    dataset = Dataset()
    stalls = 0
    for site in spec.sites:
        label = site.label()
        profile = site.profile()
        for sample in range(spec.n_samples):
            deadline.check()
            context = f"visit {label}#{sample}"
            holder: List[object] = []
            result = load_page_result(
                profile,
                config,
                visit_seed_rng(visit_seed, label, sample),
                watchdog=deadline.check,
                on_flow=holder.append,
            )
            check_visit(holder[0], result, config, context)
            if not result.completed:
                stalls += 1
                continue
            dataset.add(label, result.trace)
    return dataset, stalls


def _collect_synthetic(spec: ScenarioSpec) -> Dataset:
    """Materialise the adversarial trace families, one label each."""
    dataset = Dataset()
    for i, family in enumerate(spec.synthetic):
        rng = np.random.default_rng([FUZZ_SALT, spec.seed, spec.index, i])
        label = f"syn-{family.kind}-{i}"
        for trace in family.build_traces(rng):
            check_trace(trace, f"synthetic {label}")
            dataset.add(label, trace)
    return dataset


def _check_sanitize(dataset: Dataset) -> Tuple[Dataset, Dict[str, object]]:
    from repro.capture.sanitize import sanitize_dataset

    before = {label: len(dataset.traces[label]) for label in dataset.labels}
    clean, report = sanitize_dataset(dataset)
    for label, counts in report.items():
        if label == "_balanced_to":
            continue
        kept, dropped_error, dropped_iqr = counts
        _check(
            kept + dropped_error + dropped_iqr == before[label],
            "sanitize.accounting",
            f"{label}: {kept}+{dropped_error}+{dropped_iqr} "
            f"!= {before[label]} input traces",
        )
        _check(
            min(kept, dropped_error, dropped_iqr) >= 0,
            "sanitize.accounting",
            f"{label}: negative count in {counts}",
        )
    return clean, report


def _check_defense(
    spec: ScenarioSpec, dataset: Dataset, deadline: _Deadline
) -> Dataset:
    from repro.defenses.overhead import bandwidth_overhead, latency_overhead
    from repro.defenses.registry import build_defense

    defense = build_defense(spec.defense, seed=spec.seed)
    twin = build_defense(spec.defense, seed=spec.seed)
    defended = Dataset()
    checked_determinism = False
    for label in dataset.labels:
        for i, trace in enumerate(dataset.traces[label]):
            deadline.check()
            context = f"defense {spec.defense} on {label}[{i}]"
            out = defense.apply(trace)
            check_trace(out, context)
            if spec.defense == "original":
                _check(
                    out is trace,
                    "defense.identity",
                    f"{context}: 'original' must be the identity",
                )
            if trace.total_bytes > 0:
                bw = bandwidth_overhead(trace, out)
                _check(
                    np.isfinite(bw) and bw >= -1.0,
                    "defense.bandwidth-overhead",
                    f"{context}: overhead {bw!r}",
                )
            lat = latency_overhead(trace, out)
            _check(
                np.isfinite(lat),
                "defense.latency-overhead",
                f"{context}: overhead {lat!r}",
            )
            if not checked_determinism:
                # Fresh equal-seed instances must agree bit-for-bit.
                again = twin.apply(trace)
                _check(
                    np.array_equal(out.times, again.times)
                    and np.array_equal(out.directions, again.directions)
                    and np.array_equal(out.sizes, again.sizes),
                    "defense.determinism",
                    f"{context}: equal-seed instances disagree",
                )
                checked_determinism = True
            defended.add(label, out)
    return defended


def _check_features(
    spec: ScenarioSpec, traces: List[Trace], deadline: _Deadline
) -> Dict[str, object]:
    extractor = _feature_extractor(spec.attack)
    if extractor is None:
        return {"skipped": f"no extractor for {spec.attack}"}
    deadline.check()
    X = extractor.extract_many(traces)
    _check(
        X.shape[0] == len(traces),
        "features.row-count",
        f"{spec.attack}: {X.shape[0]} rows for {len(traces)} traces",
    )
    _check(
        bool(np.isfinite(X).all()),
        "features.finite",
        f"{spec.attack}: non-finite feature values",
    )
    if spec.attack == "tam-mlp":
        # TAM is a histogram: every packet lands in exactly one bin.
        from repro.attacks.tam import TamExtractor

        tam = TamExtractor(n_bins=16)
        for i, trace in enumerate(traces):
            total = float(tam.matrix(trace).sum())
            _check(
                total == float(len(trace)),
                "features.tam-conservation",
                f"trace[{i}]: {total} binned packets != {len(trace)}",
            )
    digest = _matrix_digest(X)
    if spec.check_workers and len(traces) > 1 and spec.attack != "cumul":
        deadline.check()
        X2 = extractor.extract_many(traces, workers=2)
        _check(
            _matrix_digest(X2) == digest,
            "features.worker-digest",
            f"{spec.attack}: workers=2 matrix differs from serial",
        )
    return {"sha": digest, "shape": list(X.shape)}


def _check_eval(
    spec: ScenarioSpec, dataset: Dataset, deadline: _Deadline
) -> Tuple[Optional[float], Optional[str]]:
    """Train/score the tiny attack; returns (accuracy, skip reason)."""
    labels = [l for l in dataset.labels if dataset.traces[l]]
    if len(labels) < 2:
        return None, f"needs >= 2 classes, have {len(labels)}"
    if min(len(dataset.traces[l]) for l in labels) < 2:
        return None, "every class needs >= 2 traces"
    from repro.attacks.registry import build_attack

    deadline.check()
    attack = build_attack(
        spec.attack, seed=spec.seed, **TINY_ATTACK_KWARGS[spec.attack]
    )
    traces, y = dataset.to_arrays()
    attack.fit(traces, y)
    deadline.check()
    predictions = attack.predict(traces)
    _check(
        predictions.shape == y.shape,
        "eval.prediction-shape",
        f"{spec.attack}: {predictions.shape} predictions for {y.shape} labels",
    )
    accuracy = accuracy_score(y, predictions)
    _check(
        np.isfinite(accuracy) and 0.0 <= accuracy <= 1.0,
        "eval.score-range",
        f"{spec.attack}: accuracy {accuracy!r}",
    )
    return float(accuracy), None


# -- the oracle entry point ----------------------------------------------------


def run_scenario(
    spec: ScenarioSpec, deadline: Optional[float] = DEFAULT_DEADLINE
) -> ScenarioOutcome:
    """Execute one scenario under the full invariant oracle.

    Raises on any finding (:class:`InvariantViolation`,
    :class:`HangDetected`, or any pipeline exception); returns a
    :class:`ScenarioOutcome` whose ``digest`` summarises every stage,
    so two runs of the same spec can be compared bit-for-bit.
    """
    clock = _Deadline(deadline)
    stages: Dict[str, object] = {}

    clock.stage = "capture"
    if spec.source == SOURCE_SIMULATED:
        dataset, stalls = _collect_simulated(spec, clock)
    else:
        dataset, stalls = _collect_synthetic(spec), 0
    stages["dataset"] = {
        "digest": dataset_content_digest(dataset),
        "n_traces": dataset.num_traces,
        "stalls": stalls,
    }

    if spec.sanitize:
        clock.stage = "sanitize"
        clock.check()
        dataset, report = _check_sanitize(dataset)
        stages["sanitize"] = {"report": report}

    clock.stage = "defend"
    dataset = _check_defense(spec, dataset, clock)
    stages["defense"] = {"digest": dataset_content_digest(dataset)}

    clock.stage = "features"
    all_traces = [t for label in dataset.labels for t in dataset.traces[label]]
    stages["features"] = _check_features(spec, all_traces, clock)

    clock.stage = "eval"
    accuracy, skip_reason = _check_eval(spec, dataset, clock)
    stages["eval"] = (
        {"accuracy": accuracy} if skip_reason is None else {"skipped": skip_reason}
    )

    return ScenarioOutcome(
        spec=spec,
        digest=_canonical_digest(stages),
        n_traces=dataset.num_traces,
        stalls=stalls,
        eval_skipped=skip_reason,
        stages=stages,
    )
