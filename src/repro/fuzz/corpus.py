"""The quarantine corpus: minimal reproducers on disk, bucketed.

Every finding the fuzzer cannot explain away is distilled (via the
shrinker) into a small JSON reproducer and quarantined under
``<corpus>/reproducers/``.  Findings are triaged into *crash buckets*
keyed by ``(exception type, innermost repro frame)`` — the same
exception raised from the same line of our code is one bug, however
many scenarios tickle it — so a fuzz campaign reports *distinct* bugs,
and re-finding a known bug is idempotent (the corpus entry already
exists; nothing changes).

Reproducer schema (``repro.fuzz.reproducer.v1``)::

    {
      "schema": "repro.fuzz.reproducer.v1",
      "bucket": {"etype": ..., "frame": ..., "id": ...},
      "message": <str>,            # the finding's exception message
      "invariant": <str | null>,   # InvariantViolation's invariant name
      "scenario": {...},           # the minimal (shrunk) scenario
      "original_scenario": {...},  # as sampled, pre-shrink
      "campaign": {"seed": ..., "index": ...},
      "shrink": {"rounds": ..., "tried": ..., "accepted": ...}
    }

``repro fuzz replay <file>`` re-runs ``scenario`` and reports whether
the recorded bucket still reproduces — the regression-test contract
for every hardening fix.
"""

from __future__ import annotations

import hashlib
import json
import re
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.fuzz.scenario import ScenarioSpec, scenario_to_jsonable

SCHEMA = "repro.fuzz.reproducer.v1"


@dataclass(frozen=True)
class CrashBucket:
    """Triage identity of a finding."""

    etype: str
    frame: str

    @property
    def id(self) -> str:
        return f"{self.etype}@{self.frame}"


def bucket_for(exc: BaseException) -> CrashBucket:
    """Bucket an exception by type and innermost frame in our code.

    The innermost traceback frame whose file lives under ``repro``
    pins the bug to our source (not numpy's or the stdlib's); findings
    raised outside any repro frame fall back to the innermost frame.
    """
    frames = traceback.extract_tb(exc.__traceback__)
    chosen = None
    for frame in frames:
        path = frame.filename.replace("\\", "/")
        if "/repro/" in path or path.endswith("repro"):
            chosen = frame
    if chosen is None and frames:
        chosen = frames[-1]
    if chosen is None:
        location = "no-traceback:?"
    else:
        location = f"{Path(chosen.filename).name}:{chosen.name}"
    return CrashBucket(etype=type(exc).__name__, frame=location)


def scenario_digest(spec: ScenarioSpec) -> str:
    """Content digest of a scenario's canonical JSON form."""
    encoded = json.dumps(
        scenario_to_jsonable(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _sanitize_name(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name)


class QuarantineCorpus:
    """A directory of minimal reproducers, one JSON file per finding."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    @property
    def reproducer_dir(self) -> Path:
        return self.root / "reproducers"

    def entry_path(self, bucket: CrashBucket, spec: ScenarioSpec) -> Path:
        digest = scenario_digest(spec)[:12]
        return self.reproducer_dir / f"{_sanitize_name(bucket.id)}__{digest}.json"

    def add(
        self,
        exc: BaseException,
        spec: ScenarioSpec,
        original: ScenarioSpec,
        shrink_audit: Dict[str, int],
    ) -> "CorpusEntry":
        """Quarantine one finding; idempotent per (bucket, scenario)."""
        from repro.ioutil import atomic_write_text

        bucket = bucket_for(exc)
        path = self.entry_path(bucket, spec)
        if path.exists():
            return CorpusEntry(path=path, bucket=bucket, new=False)
        payload = {
            "schema": SCHEMA,
            "bucket": {"etype": bucket.etype, "frame": bucket.frame, "id": bucket.id},
            "message": str(exc),
            "invariant": getattr(exc, "invariant", None),
            "scenario": scenario_to_jsonable(spec),
            "original_scenario": scenario_to_jsonable(original),
            "campaign": {"seed": original.seed, "index": original.index},
            "shrink": shrink_audit,
        }
        self.reproducer_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return CorpusEntry(path=path, bucket=bucket, new=True)

    def entries(self) -> List[Path]:
        """Reproducer files, sorted for stable iteration."""
        if not self.reproducer_dir.is_dir():
            return []
        return sorted(self.reproducer_dir.glob("*.json"))

    def buckets(self) -> Dict[str, List[Path]]:
        """``{bucket id: [reproducer files]}`` across the corpus."""
        out: Dict[str, List[Path]] = {}
        for path in self.entries():
            data = json.loads(path.read_text())
            out.setdefault(data["bucket"]["id"], []).append(path)
        return out

    def digest(self) -> str:
        """Order-independent content digest of the whole corpus."""
        h = hashlib.sha256()
        for path in self.entries():
            data = json.loads(path.read_text())
            h.update(data["bucket"]["id"].encode("utf-8"))
            h.update(
                json.dumps(
                    data["scenario"], sort_keys=True, separators=(",", ":")
                ).encode("utf-8")
            )
        return h.hexdigest()


@dataclass(frozen=True)
class CorpusEntry:
    """Result of quarantining one finding."""

    path: Path
    bucket: CrashBucket
    new: bool


def load_reproducer(path) -> Dict[str, object]:
    """Parse and schema-check one reproducer file."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: not a fuzz reproducer (schema {data.get('schema')!r})"
        )
    return data
