"""Figure 3: packet and TSO size adjustment vs throughput.

The paper runs iperf3 over a 100 Gb/s link between two Xeon servers
and sweeps a "maximum reduction degree" alpha: packet size falls from
1500 by alpha per packet down to ``1500 - 10*alpha`` (then resets);
TSO size falls from 44 by ``alpha/4`` down to ``44 - 8*(alpha/4)`` or
1.  Throughput decreases with alpha but stays at 19.7 Gb/s or higher.

Here the same sweep runs over the simulated stack: a bulk transfer on
a 100 Gb/s path, single CPU core with the calibrated cost model, the
:class:`~repro.stob.actions.SizeSweepAction` installed as the Stob
controller.  Goodput is measured at the receiver over the steady-state
window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.host import make_flow
from repro.stack.nic import CpuModel
from repro.stack.tcp import TcpConfig
from repro.stob.actions import SizeSweepAction
from repro.stob.controller import StobController
from repro.units import gbps, to_gbps, usec


@dataclass(frozen=True)
class Figure3Config:
    """Parameters of the throughput sweep (frozen; use
    :func:`dataclasses.replace` for variants)."""

    alphas: tuple = (0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
    link_gbps: float = 100.0
    rtt: float = usec(100)
    cc: str = "cubic"
    #: Measurement: run to ``warmup + measure`` seconds, count receiver
    #: bytes in the measure window.
    warmup: float = 0.05
    measure: float = 0.10
    cpu: CpuModel = field(default_factory=CpuModel)
    buffer_bdp: float = 8.0

    def to_dict(self) -> dict:
        from repro.experiments.config import config_to_dict

        return config_to_dict(self)


@dataclass
class Figure3Point:
    """One sweep point."""

    alpha: int
    goodput_gbps: float
    mean_packet_size: float
    mean_tso_packets: float
    cpu_utilization: float
    retransmissions: int


def run_point(alpha: int, config: Optional[Figure3Config] = None) -> Figure3Point:
    """Measure goodput at one reduction degree."""
    config = config or Figure3Config()
    sim = Simulator()
    path = NetworkPath(
        rate=gbps(config.link_gbps),
        rtt=config.rtt,
        buffer_bdp=config.buffer_bdp,
    )
    flow = make_flow(
        sim,
        path,
        client_config=TcpConfig(cc=config.cc),
        server_config=TcpConfig(cc=config.cc),
        server_cpu=config.cpu,
    )
    controller = StobController(action=SizeSweepAction(alpha))
    flow.server.segment_controller = controller

    # iperf3-style: an effectively unbounded source.
    def feed() -> None:
        # Keep the send buffer topped up without unbounded memory.
        if flow.server.send_buffer.sendable() < 1 << 27:
            flow.server.write(1 << 27)
        sim.schedule(0.01, feed)

    flow.server.on_established = feed
    flow.connect()

    sim.run(until=config.warmup)
    nic = flow.server_host.nic
    start_bytes = flow.client.receive_buffer.delivered
    warm = (nic.tx_packets, nic.tx_bytes, nic.tx_segments)
    sim.run(until=config.warmup + config.measure)
    got = flow.client.receive_buffer.delivered - start_bytes

    # Shape statistics over the measurement window only (the cold
    # start's small slow-start segments would bias the means).
    d_packets = nic.tx_packets - warm[0]
    d_bytes = nic.tx_bytes - warm[1]
    d_segments = nic.tx_segments - warm[2]
    mean_pkt = d_bytes / d_packets if d_packets else 0.0
    mean_tso = d_packets / d_segments if d_segments else 0.0
    return Figure3Point(
        alpha=alpha,
        goodput_gbps=to_gbps(got / config.measure),
        mean_packet_size=mean_pkt,
        mean_tso_packets=mean_tso,
        cpu_utilization=flow.server_host.cpu.utilization(
            config.warmup + config.measure
        ),
        retransmissions=flow.server.retransmissions,
    )


def run_figure3(config: Optional[Figure3Config] = None) -> List[Figure3Point]:
    """The full sweep (the paper's Figure 3 series)."""
    config = config or Figure3Config()
    return [run_point(alpha, config) for alpha in config.alphas]


def format_figure3(points: List[Figure3Point]) -> str:
    """Render the sweep as the table the paper plots."""
    lines = [
        "Figure 3: packet & TSO size adjustment vs single-connection throughput",
        f"{'alpha':>6} {'goodput(Gb/s)':>14} {'avg pkt(B)':>11} "
        f"{'avg TSO(pkts)':>14} {'CPU util':>9}",
    ]
    for p in points:
        lines.append(
            f"{p.alpha:>6} {p.goodput_gbps:>14.1f} {p.mean_packet_size:>11.0f} "
            f"{p.mean_tso_packets:>14.1f} {p.cpu_utilization:>9.2f}"
        )
    return "\n".join(lines)
