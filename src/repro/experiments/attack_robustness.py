"""Defense effects across attacker families.

§2.2 taxonomises manipulations into padding, timing modification and
packet-size modification.  Different attacks key on different feature
families, so a defense's effect depends on the attacker:

* **k-FP** uses timing *and* size/direction statistics;
* **CUMUL** is timing-blind (pure cumulative size curves);
* **feature k-NN** is a weaker consumer of the k-FP features.

This experiment evaluates the paper's three countermeasures against
all three attackers on full traces.  Expected structure: *delaying*
cannot move CUMUL at all (its features are timing-free); *splitting*
perturbs CUMUL's curves; k-FP reacts to both, weakly (the paper's
Table 2 'All' row).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.attacks.cumul import CumulAttack
from repro.attacks.kfp import KFingerprinting
from repro.attacks.knn_attack import FeatureKnnAttack
from repro.capture.dataset import Dataset
from repro.capture.sanitize import sanitize_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.table2 import make_defenses
from repro.web.pageload import collect_dataset

ATTACKS = ("kfp", "cumul", "knn")


def _make_attack(name: str, config: ExperimentConfig):
    if name == "kfp":
        return KFingerprinting(
            n_estimators=config.n_estimators, random_state=config.seed
        )
    if name == "cumul":
        return CumulAttack(epochs=20, random_state=config.seed)
    if name == "knn":
        return FeatureKnnAttack(n_neighbors=3)
    raise ValueError(f"unknown attack {name!r}")


@dataclass
class RobustnessCell:
    attack: str
    defense: str
    accuracy: float


def run_attack_robustness(
    config: Optional[ExperimentConfig] = None,
    dataset: Optional[Dataset] = None,
    test_fraction: float = 0.3,
) -> List[RobustnessCell]:
    """Accuracy grid: attacker x defense condition (full traces)."""
    config = config or ExperimentConfig()
    if dataset is None:
        dataset = collect_dataset(
            n_samples=config.n_samples, config=config.pageload,
            seed=config.seed,
        )
    clean, _ = sanitize_dataset(dataset, balance_to=config.balance_to)
    cells: List[RobustnessCell] = []
    for defense_name, defense in make_defenses(config.seed).items():
        defended = clean.map(defense.apply)
        # Fresh generator per condition: every defense is evaluated on
        # the *same* train/test partition, so differences between cells
        # reflect the defense, not split variance.
        rng = np.random.default_rng(config.seed)
        train, test = defended.train_test_split(test_fraction, rng)
        for attack_name in ATTACKS:
            attack = _make_attack(attack_name, config)
            attack.fit_dataset(train)
            cells.append(
                RobustnessCell(
                    attack=attack_name,
                    defense=defense_name,
                    accuracy=attack.score_dataset(test),
                )
            )
    return cells


def format_attack_robustness(cells: List[RobustnessCell]) -> str:
    defenses = sorted({c.defense for c in cells})
    grid: Dict[str, Dict[str, float]] = {}
    for cell in cells:
        grid.setdefault(cell.attack, {})[cell.defense] = cell.accuracy
    lines = [
        "Attack robustness: accuracy per attacker x defense (full traces)",
        f"{'attack':<8} | " + " | ".join(f"{d:>9}" for d in defenses),
    ]
    for attack in ATTACKS:
        row = f"{attack:<8} | " + " | ".join(
            f"{grid[attack][d]:>9.3f}" for d in defenses
        )
        lines.append(row)
    return "\n".join(lines)
