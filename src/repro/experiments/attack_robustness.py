"""Defense effects across attacker families.

§2.2 taxonomises manipulations into padding, timing modification and
packet-size modification.  Different attacks key on different feature
families, so a defense's effect depends on the attacker:

* **k-FP** uses timing *and* size/direction statistics;
* **CUMUL** is timing-blind (pure cumulative size curves);
* **feature k-NN** is a weaker consumer of the k-FP features;
* **TAM+MLP** is the deep-learning-class attacker: it learns its own
  features from coarse time x direction matrices, the family WF
  defenses are usually strongest against classically but weakest
  against in the DL era.

This experiment evaluates the paper's three countermeasures against
every attacker in the registry on full traces.  Expected structure:
*delaying* cannot move CUMUL at all (its features are timing-free);
*splitting* perturbs CUMUL's curves; k-FP reacts to both, weakly (the
paper's Table 2 'All' row); TAM+MLP keys on the traffic's coarse
time-volume shape, which splitting inflates and delaying stretches.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks.registry import implemented_attacks
from repro.capture.dataset import Dataset
from repro.capture.sanitize import sanitize_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.table2 import make_attack, make_defenses
from repro.web.pageload import collect_dataset

#: Grid row order: every registered attack (classical first, then DL).
ATTACKS = ("kfp", "cumul", "knn", "tam-mlp")


def _make_attack(name: str, config: ExperimentConfig):
    """Deprecated: use :func:`repro.experiments.table2.make_attack`
    (registry-backed) instead."""
    warnings.warn(
        "_make_attack is deprecated; use "
        "repro.experiments.table2.make_attack(config, name)",
        DeprecationWarning,
        stacklevel=2,
    )
    return make_attack(config, name)


@dataclass
class RobustnessCell:
    attack: str
    defense: str
    accuracy: float


def run_attack_robustness(
    config: Optional[ExperimentConfig] = None,
    dataset: Optional[Dataset] = None,
    test_fraction: float = 0.3,
    attacks: Optional[Sequence[str]] = None,
) -> List[RobustnessCell]:
    """Accuracy grid: attacker x defense condition (full traces).

    ``attacks`` selects a subset of registered attack names (default:
    the full :data:`ATTACKS` row order).  Unknown names fail fast —
    before any trace is collected — with the registry's error.
    """
    config = config or ExperimentConfig()
    attacks = tuple(attacks) if attacks is not None else ATTACKS
    unknown = sorted(set(attacks) - set(implemented_attacks()))
    if unknown:
        raise ValueError(
            f"unknown attacks {unknown}; choose from {sorted(implemented_attacks())}"
        )
    if dataset is None:
        dataset = collect_dataset(
            n_samples=config.n_samples, config=config.pageload,
            seed=config.seed,
        )
    clean, _ = sanitize_dataset(dataset, balance_to=config.balance_to)
    cells: List[RobustnessCell] = []
    for defense_name, defense in make_defenses(config.seed).items():
        defended = clean.map(defense.apply)
        # Fresh generator per condition: every defense is evaluated on
        # the *same* train/test partition, so differences between cells
        # reflect the defense, not split variance.
        rng = np.random.default_rng(config.seed)
        train, test = defended.train_test_split(test_fraction, rng)
        for attack_name in attacks:
            attack = make_attack(config, attack_name)
            attack.fit_dataset(train)
            cells.append(
                RobustnessCell(
                    attack=attack_name,
                    defense=defense_name,
                    accuracy=attack.score_dataset(test),
                )
            )
    return cells


def format_attack_robustness(cells: List[RobustnessCell]) -> str:
    defenses = sorted({c.defense for c in cells})
    attacks = [a for a in ATTACKS if any(c.attack == a for c in cells)]
    grid: Dict[str, Dict[str, float]] = {}
    for cell in cells:
        grid.setdefault(cell.attack, {})[cell.defense] = cell.accuracy
    lines = [
        "Attack robustness: accuracy per attacker x defense (full traces)",
        f"{'attack':<8} | " + " | ".join(f"{d:>9}" for d in defenses),
    ]
    for attack in attacks:
        row = f"{attack:<8} | " + " | ".join(
            f"{grid[attack][d]:>9.3f}" for d in defenses
        )
        lines.append(row)
    return "\n".join(lines)


def robustness_json(
    cells: List[RobustnessCell], config: ExperimentConfig
) -> Dict[str, object]:
    """A JSON-safe dump of the grid (``results/`` artifacts)."""
    return {
        "experiment": "attack_robustness",
        "config": {
            "n_samples": config.n_samples,
            "balance_to": config.balance_to,
            "seed": config.seed,
        },
        "cells": [
            {"attack": c.attack, "defense": c.defense, "accuracy": c.accuracy}
            for c in cells
        ],
    }
