"""Resilient experiment runner: retries, deadlines, checkpoint/resume.

Dataset collection is the long pole of every experiment in this repo —
thousands of simulated page loads — and under fault injection
individual trials can stall or fail.  This module wraps trial
execution with the reliability layer a long collection run needs:

* **deterministic per-trial seeding** — each (site, sample, attempt)
  triple derives its own ``numpy.random.Generator`` from the master
  seed, independent of execution order, so an interrupted run resumed
  from a checkpoint produces a byte-identical final dataset;
* **stall detection** — per-trial simulated-time deadlines surface as
  :class:`~repro.web.pageload.PageLoadStalled`, and an optional
  wall-clock deadline aborts trials that burn real time;
* **retry with reseed and exponential backoff** — a failed trial is
  retried up to a budget, each attempt with a fresh derived seed;
* **structured failure log** — trials that exhaust their budget are
  recorded (site, sample, attempts, error) and the run completes
  gracefully with reduced samples;
* **checkpointing** — partial datasets are persisted periodically
  through :mod:`repro.capture.serialize` plus a JSON manifest, and
  ``resume=True`` skips completed trials;
* **parallel execution** — ``workers > 1`` fans trials out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` in chunks.  Because
  every trial's randomness is position-derived
  (:func:`trial_seed_rng`) and results are merged by coordinate, the
  final dataset is bit-identical for any worker count, and
  checkpoint/resume keeps working across worker-count changes.
"""

from __future__ import annotations

import functools
import json
import logging
import os
import time
import warnings
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    ARTIFACT_DECODE_ERRORS,
    RETRYABLE_ERRORS,
    RunTerminated,
    TrialError,
    sigterm_translated,
)
from repro.ioutil import atomic_write_json
from repro.obs import runtime as _obs_runtime
from repro.parallel import chunked, default_chunk_size, resolve_workers
from repro.supervise import SupervisedPool, SupervisorConfig

from repro.capture.dataset import Dataset
from repro.capture.serialize import load_dataset, save_dataset_atomic
from repro.capture.trace import Trace
from repro.web.pageload import PageLoadConfig, PageLoadStalled, load_page_strict
from repro.web.sites import SITE_CATALOG

log = logging.getLogger("repro.runner")


def __getattr__(name: str):
    # Deprecation shim: the old module-level RETRYABLE tuple included
    # bare RuntimeError/ValueError, which retried (and thereby masked)
    # programming bugs.  Retryability now lives in the repro.errors
    # taxonomy; importing the old name still works but warns.
    if name == "RETRYABLE":
        warnings.warn(
            "repro.experiments.runner.RETRYABLE is deprecated; use "
            "repro.errors.RETRYABLE_ERRORS (trials opt into retry by "
            "raising repro.errors.TrialError subclasses)",
            DeprecationWarning,
            stacklevel=2,
        )
        return RETRYABLE_ERRORS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class TrialDeadlineExceeded(TrialError):
    """A trial exceeded its wall-clock budget (raised by the watchdog)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff shape for one trial."""

    max_attempts: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 10.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )


@dataclass
class TrialFailure:
    """One trial that exhausted its retry budget."""

    label: str
    index: int
    attempts: int
    error: str
    message: str


@dataclass
class CollectionReport:
    """What happened during a (possibly resumed) collection run."""

    completed_trials: int = 0
    resumed_trials: int = 0
    retries: int = 0
    stalls: int = 0
    failures: List[TrialFailure] = field(default_factory=list)
    #: True when the whole collection was served from the artifact
    #: cache (no trials executed this run).
    from_cache: bool = False

    @property
    def dropped_trials(self) -> int:
        return len(self.failures)

    @property
    def quarantined_trials(self) -> int:
        """Trials excluded by the supervisor after killing workers."""
        return sum(1 for f in self.failures if f.error == "WorkerCrashError")

    def summary(self) -> str:
        text = (
            f"{self.completed_trials} trials collected "
            f"({self.resumed_trials} from checkpoint), "
            f"{self.retries} retries, {self.stalls} stalls, "
            f"{self.dropped_trials} dropped"
        )
        if self.quarantined_trials:
            text += f" ({self.quarantined_trials} quarantined)"
        return text


@dataclass(frozen=True)
class RunnerConfig:
    """Reliability and parallelism knobs for a collection run.

    Frozen: derive variants with :func:`dataclasses.replace`.  Only the
    ``retry`` policy and ``trial_wall_deadline`` shape what gets
    *collected*; the checkpoint/worker/chunk knobs are wall-clock-only
    and are therefore excluded from cache-key derivation.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Wall-clock seconds one trial attempt may burn (None = unlimited).
    trial_wall_deadline: Optional[float] = None
    #: Write a checkpoint every N completed trials (0 disables).
    checkpoint_every: int = 25
    checkpoint_path: Optional[str] = None
    #: Trial-executor processes: 1 = in-process (the default fast
    #: path), N > 1 = a pool of N, 0 = one per core.  Results are
    #: bit-identical for any value because trial seeds are
    #: position-derived; ``trial_fn`` must be picklable when > 1.
    workers: int = 1
    #: Trials per pool task (None = auto, ~4 chunks per worker).
    chunk_size: Optional[int] = None
    #: Failure handling for the parallel executor: worker-death
    #: recovery, poison-trial quarantine, circuit breaker, hang kills.
    #: Recovery replays position-seeded work, so (like ``workers``)
    #: none of it can change the collected bytes.
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)

    def to_dict(self) -> dict:
        from repro.experiments.config import config_to_dict

        return config_to_dict(self)


#: A trial function: (label, sample index, rng, watchdog) -> Trace.
TrialFn = Callable[[str, int, np.random.Generator, Optional[Callable[[], None]]], Trace]

#: Fixed bucket edges for per-trial wall time (seconds).
TRIAL_WALL_EDGES = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


def trial_seed_rng(master_seed: int, site_index: int, sample: int, attempt: int) -> np.random.Generator:
    """The canonical per-trial generator.

    Seeding from the full coordinate tuple (not a sequential stream)
    is what makes resume byte-identical: a trial's randomness depends
    only on *which* trial it is and the attempt number, never on how
    many trials ran before it.
    """
    return np.random.default_rng([master_seed, site_index, sample, attempt])


@dataclass(frozen=True)
class PageLoadTrial:
    """The default trial: one strict page load of the labelled site.

    A dataclass rather than a closure so it pickles — the parallel
    executor ships the trial function to worker processes.
    """

    config: PageLoadConfig

    def __call__(
        self,
        label: str,
        index: int,
        rng: np.random.Generator,
        watchdog: Optional[Callable[[], None]],
    ) -> Trace:
        return load_page_strict(
            SITE_CATALOG[label], label, self.config, rng, watchdog=watchdog
        )


def pageload_trial_fn(config: PageLoadConfig) -> TrialFn:
    """The default (picklable) page-load trial function."""
    return PageLoadTrial(config)


@dataclass
class TrialOutcome:
    """Everything one trial's retry loop produced (shipped back from
    pool workers; also used by the in-process path)."""

    label: str
    sample: int
    trace: Optional[Trace]
    retries: int = 0
    stalls: int = 0
    failure: Optional[TrialFailure] = None


def execute_trial(
    trial_fn: TrialFn,
    label: str,
    site_index: int,
    sample: int,
    master_seed: int,
    retry: RetryPolicy,
    wall_deadline: Optional[float] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> TrialOutcome:
    """One trial with retries — the shared core of the serial and
    parallel paths.  Each attempt reseeds from the trial coordinates,
    so where the trial executes never changes its randomness."""
    outcome = TrialOutcome(label=label, sample=sample, trace=None)
    last_error: Optional[BaseException] = None
    trial_started = clock()
    for attempt in range(retry.max_attempts):
        rng = trial_seed_rng(master_seed, site_index, sample, attempt)
        watchdog: Optional[Callable[[], None]] = None
        if wall_deadline is not None:
            started = clock()

            def watchdog() -> None:
                elapsed = clock() - started
                if elapsed > wall_deadline:
                    raise TrialDeadlineExceeded(
                        f"trial exceeded wall-clock budget "
                        f"({elapsed:.1f}s > {wall_deadline:.1f}s)"
                    )

        try:
            outcome.trace = trial_fn(label, sample, rng, watchdog)
            _observe_trial(outcome, clock() - trial_started)
            return outcome
        except RETRYABLE_ERRORS as error:
            last_error = error
            if isinstance(error, PageLoadStalled):
                outcome.stalls += 1
            if attempt + 1 < retry.max_attempts:
                outcome.retries += 1
                sleep(retry.delay(attempt + 1))
    outcome.failure = TrialFailure(
        label=label,
        index=sample,
        attempts=retry.max_attempts,
        error=type(last_error).__name__,
        message=str(last_error),
    )
    _observe_trial(outcome, clock() - trial_started)
    return outcome


def _observe_trial(outcome: TrialOutcome, wall_seconds: float) -> None:
    """Record one finished retry loop in the active metrics registry.

    Runs in whichever process executed the trial — the parent on the
    serial path, a pool worker otherwise (worker registries travel
    home as snapshots, see :mod:`repro.obs.runtime`).  All counters
    here are sim-determined, so serial and parallel runs report equal
    totals; only the wall-time histogram is machine-dependent.
    """
    obs = _obs_runtime.session()
    if obs is None:
        return
    registry = obs.registry
    registry.counter("runner.trials").add(1)
    if outcome.trace is not None:
        registry.counter("runner.trials_completed").add(1)
    registry.counter("runner.retries").add(outcome.retries)
    registry.counter("runner.stalls").add(outcome.stalls)
    if outcome.failure is not None:
        registry.counter("runner.trials_failed").add(1)
    registry.histogram(
        "runner.trial_wall_seconds", TRIAL_WALL_EDGES
    ).observe(wall_seconds)


def _execute_trial_chunk(
    trial_fn: TrialFn,
    retry: RetryPolicy,
    master_seed: int,
    wall_deadline: Optional[float],
    trials: List[Tuple[str, int, int]],
) -> List[TrialOutcome]:
    """Pool-worker task: run a chunk of ``(label, site_index, sample)``
    trials and ship their outcomes back in one message."""
    return [
        execute_trial(
            trial_fn, label, site_index, sample, master_seed, retry,
            wall_deadline=wall_deadline,
        )
        for label, site_index, sample in trials
    ]


class ResilientRunner:
    """Executes a grid of (site, sample) trials with retries and
    checkpointing.

    ``sleep`` and ``clock`` are injectable for tests (no real backoff
    sleeping or wall-clock waiting in CI).
    """

    CHECKPOINT_VERSION = 1

    def __init__(
        self,
        config: Optional[RunnerConfig] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or RunnerConfig()
        self._sleep = sleep
        self._clock = clock

    # -- checkpoint format -------------------------------------------------

    @staticmethod
    def _npz_path(checkpoint_path: str) -> str:
        # np.savez appends ".npz" to extension-less paths; normalise so
        # the load side looks for the file that was actually written.
        if not checkpoint_path.endswith(".npz"):
            return checkpoint_path + ".npz"
        return checkpoint_path

    def _manifest_path(self, checkpoint_path: str) -> str:
        return self._npz_path(checkpoint_path) + ".manifest.json"

    def _fingerprint(self, sites: Sequence[str], n_samples: int, master_seed: int) -> str:
        return f"v{self.CHECKPOINT_VERSION}:{master_seed}:{n_samples}:{','.join(sites)}"

    def _write_checkpoint(
        self,
        checkpoint_path: str,
        fingerprint: str,
        results: Dict[str, Dict[int, Trace]],
        failures: List[TrialFailure],
    ) -> None:
        dataset = Dataset()
        indices: Dict[str, List[int]] = {}
        for label in sorted(results):
            ordered = sorted(results[label])
            indices[label] = ordered
            dataset.traces[label] = [results[label][i] for i in ordered]
        # Both files are published atomically (tmp + fsync + replace):
        # a SIGKILL mid-checkpoint must leave either the previous
        # complete checkpoint or the new one, never a truncated .npz —
        # and the manifest is written second, so a manifest always
        # refers to a fully published archive.
        save_dataset_atomic(dataset, self._npz_path(checkpoint_path))
        manifest = {
            "version": self.CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "indices": indices,
            "failures": [asdict(f) for f in failures],
        }
        atomic_write_json(self._manifest_path(checkpoint_path), manifest)
        obs = _obs_runtime.session()
        if obs is not None:
            obs.registry.counter("runner.checkpoint_writes").add(1)
            obs.emit(
                "checkpoint.write", "runner",
                trials=sum(len(v) for v in results.values()),
            )

    def _load_checkpoint(
        self, checkpoint_path: str, fingerprint: str
    ) -> Tuple[Dict[str, Dict[int, Trace]], List[TrialFailure]]:
        manifest_path = self._manifest_path(checkpoint_path)
        npz_path = self._npz_path(checkpoint_path)
        if not (os.path.exists(npz_path) and os.path.exists(manifest_path)):
            return {}, []
        try:
            with open(manifest_path) as handle:
                manifest = json.load(handle)
        except ARTIFACT_DECODE_ERRORS:
            return self._evict_checkpoint(checkpoint_path, "unreadable manifest")
        if manifest.get("fingerprint") != fingerprint:
            raise ValueError(
                "checkpoint was written by a different run configuration: "
                f"{manifest.get('fingerprint')!r} != {fingerprint!r}; "
                "remove it or rerun with the original seed/sites/samples"
            )
        # A checkpoint interrupted by SIGKILL (or disk-full) can leave a
        # truncated archive behind on filesystems without atomic-write
        # guarantees; resume must fall back to a fresh collection, not
        # crash — the data is recomputable by construction.
        try:
            dataset = load_dataset(npz_path)
            results: Dict[str, Dict[int, Trace]] = {}
            for label, ordered in manifest["indices"].items():
                traces = dataset.traces.get(label, [])
                results[label] = {
                    int(index): trace for index, trace in zip(ordered, traces)
                }
            failures = [TrialFailure(**f) for f in manifest["failures"]]
        except ARTIFACT_DECODE_ERRORS + (TypeError,):
            return self._evict_checkpoint(checkpoint_path, "corrupt archive")
        return results, failures

    def _evict_checkpoint(
        self, checkpoint_path: str, reason: str
    ) -> Tuple[Dict[str, Dict[int, Trace]], List[TrialFailure]]:
        """Remove an invalid checkpoint pair and resume from scratch."""
        log.warning(
            "checkpoint at %s is invalid (%s); evicting it and "
            "collecting from scratch", checkpoint_path, reason,
        )
        obs = _obs_runtime.session()
        if obs is not None:
            obs.registry.counter("runner.checkpoint_corrupt").add(1)
            obs.emit("checkpoint.corrupt", "runner", reason=reason)
        for path in (
            self._npz_path(checkpoint_path),
            self._manifest_path(checkpoint_path),
        ):
            try:
                os.remove(path)
            except OSError:
                pass
        return {}, []

    # -- execution ---------------------------------------------------------

    def _run_trial(
        self,
        trial_fn: TrialFn,
        label: str,
        site_index: int,
        sample: int,
        master_seed: int,
        report: CollectionReport,
    ) -> Optional[Trace]:
        """One in-process trial; None when the budget is exhausted."""
        outcome = execute_trial(
            trial_fn, label, site_index, sample, master_seed,
            self.config.retry,
            wall_deadline=self.config.trial_wall_deadline,
            sleep=self._sleep,
            clock=self._clock,
        )
        self._merge_outcome(outcome, report)
        return outcome.trace

    @staticmethod
    def _merge_outcome(outcome: TrialOutcome, report: CollectionReport) -> None:
        report.retries += outcome.retries
        report.stalls += outcome.stalls
        if outcome.failure is not None:
            report.failures.append(outcome.failure)

    def collect(
        self,
        sites: Sequence[str],
        n_samples: int,
        trial_fn: TrialFn,
        master_seed: int,
        resume: bool = False,
        progress: Optional[Callable[[str, int], None]] = None,
    ) -> Tuple[Dataset, CollectionReport]:
        """Run the (site x sample) grid and return (dataset, report).

        With ``resume=True`` and a configured ``checkpoint_path``,
        completed trials are loaded from the checkpoint and skipped;
        the final dataset is identical to an uninterrupted run because
        trial seeds are position-derived.  On KeyboardInterrupt — or
        SIGTERM, which container schedulers send on shutdown and which
        is translated to :class:`repro.errors.RunTerminated` here — a
        final checkpoint is written before the interrupt propagates,
        so the run is resumable.
        """
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        sites = sorted(sites)
        report = CollectionReport()
        checkpoint_path = self.config.checkpoint_path
        fingerprint = self._fingerprint(sites, n_samples, master_seed)
        results: Dict[str, Dict[int, Trace]] = {}
        failed: Dict[str, set] = {}
        if resume:
            if checkpoint_path is None:
                raise ValueError("resume=True requires a checkpoint_path")
            results, report.failures = self._load_checkpoint(
                checkpoint_path, fingerprint
            )
            report.resumed_trials = sum(len(v) for v in results.values())
            report.completed_trials = report.resumed_trials
            for failure in report.failures:
                failed.setdefault(failure.label, set()).add(failure.index)

        since_checkpoint = 0

        def maybe_checkpoint(force: bool = False) -> None:
            nonlocal since_checkpoint
            if checkpoint_path is None:
                return
            every = self.config.checkpoint_every
            if force or (every > 0 and since_checkpoint >= every):
                self._write_checkpoint(
                    checkpoint_path, fingerprint, results, report.failures
                )
                since_checkpoint = 0

        # Trials still to run, in deterministic grid order.
        pending = [
            (label, site_index, sample)
            for site_index, label in enumerate(sites)
            for sample in range(n_samples)
            if sample not in results.get(label, {})
            and sample not in failed.get(label, set())
        ]

        obs = _obs_runtime.session()

        def complete(outcome: TrialOutcome) -> None:
            nonlocal since_checkpoint
            self._merge_outcome(outcome, report)
            if obs is not None:
                if outcome.retries:
                    obs.emit(
                        "trial.retry", "runner", label=outcome.label,
                        sample=outcome.sample, retries=outcome.retries,
                    )
                if outcome.failure is not None:
                    obs.emit(
                        "trial.failure", "runner", label=outcome.label,
                        sample=outcome.sample, error=outcome.failure.error,
                    )
                else:
                    obs.emit(
                        "trial.end", "runner", label=outcome.label,
                        sample=outcome.sample, retries=outcome.retries,
                        stalls=outcome.stalls,
                    )
            if outcome.trace is not None:
                results.setdefault(outcome.label, {})[outcome.sample] = outcome.trace
                report.completed_trials += 1
                since_checkpoint += 1
                if progress is not None:
                    progress(outcome.label, outcome.sample)
            maybe_checkpoint()

        workers = resolve_workers(self.config.workers)
        with sigterm_translated():
            try:
                if workers > 1 and len(pending) > 1:
                    self._collect_parallel(
                        pending, trial_fn, master_seed, workers, complete, report
                    )
                else:
                    for label, site_index, sample in pending:
                        if obs is not None:
                            obs.emit(
                                "trial.start", "runner", label=label, sample=sample
                            )
                        outcome = execute_trial(
                            trial_fn, label, site_index, sample, master_seed,
                            self.config.retry,
                            wall_deadline=self.config.trial_wall_deadline,
                            sleep=self._sleep,
                            clock=self._clock,
                        )
                        complete(outcome)
            except (KeyboardInterrupt, RunTerminated):
                maybe_checkpoint(force=True)
                raise
        # Failure order must not depend on completion order (the
        # checkpoint manifest and report are part of the deterministic
        # output surface).
        report.failures.sort(key=lambda f: (f.label, f.index))
        maybe_checkpoint(force=True)

        dataset = Dataset()
        for label in sites:
            if label in results:
                dataset.traces[label] = [
                    results[label][i] for i in sorted(results[label])
                ]
        return dataset, report

    def _collect_parallel(
        self,
        pending: List[Tuple[str, int, int]],
        trial_fn: TrialFn,
        master_seed: int,
        workers: int,
        complete: Callable[[TrialOutcome], None],
        report: CollectionReport,
    ) -> None:
        """Fan ``pending`` out over a supervised process pool in chunks.

        Outcomes are merged as chunks finish (so periodic checkpoints
        still happen mid-run), but every result is keyed by its trial
        coordinates and every seed is position-derived, so the final
        dataset is independent of completion order, worker count *and
        worker deaths*: the :class:`~repro.supervise.SupervisedPool`
        rebuilds crashed pools and reschedules lost chunks, which
        recompute identical bytes.  Poison trials it quarantines are
        recorded as structured failures on ``report``.  On interrupt,
        unstarted chunks are cancelled and the caller writes a final
        checkpoint covering everything merged so far.
        """
        chunk_size = self.config.chunk_size or default_chunk_size(
            len(pending), workers
        )
        chunks = chunked(pending, chunk_size)
        # With observability on, chunks run under worker-local metric
        # sessions whose snapshots ship back with the outcomes and are
        # folded into the parent registry (obs.absorb) — counter totals
        # therefore match the serial path for any worker count.  A
        # chunk lost to a worker crash never ships its snapshot, so
        # recovery does not double-count.
        chunk_fn = _execute_trial_chunk
        if _obs_runtime.session() is not None:
            chunk_fn = _obs_runtime.WorkerTask(_execute_trial_chunk)
        task = functools.partial(
            chunk_fn,
            trial_fn,
            self.config.retry,
            master_seed,
            self.config.trial_wall_deadline,
        )

        def merge(payload: object) -> None:
            for outcome in _obs_runtime.absorb(payload):
                complete(outcome)

        supervisor_config = self.config.supervisor
        if (
            supervisor_config.trial_deadline is None
            and self.config.trial_wall_deadline is not None
        ):
            # Hang detection defaults to the trial wall deadline the
            # workers already enforce cooperatively — the supervisor's
            # copy catches trials hung somewhere the watchdog can't see.
            supervisor_config = replace(
                supervisor_config, trial_deadline=self.config.trial_wall_deadline
            )
        pool = SupervisedPool(
            workers, task, merge, config=supervisor_config
        )
        supervisor_report = pool.run(chunks)
        for quarantined in supervisor_report.quarantined:
            label, _site_index, sample = quarantined.item
            report.failures.append(
                TrialFailure(
                    label=label,
                    index=sample,
                    attempts=quarantined.crashes,
                    error="WorkerCrashError",
                    message=(
                        f"quarantined after killing a worker "
                        f"{quarantined.crashes} times"
                    ),
                )
            )


def resilient_capture_key(
    sites: Sequence[str],
    n_samples: int,
    pageload_config: PageLoadConfig,
    seed: int,
    runner_config: RunnerConfig,
):
    """Capture-stage cache key of a resilient collection, or None when
    the run is not cacheable.

    The retry policy enters the key (retries decide which trials drop,
    so they shape the dataset); worker/checkpoint/chunk knobs do not
    (wall-clock only, byte-identical output).  A configured
    ``trial_wall_deadline`` makes outcomes machine-dependent, so such
    runs key to None and are never cached.
    """
    if runner_config.trial_wall_deadline is not None:
        return None
    from repro.cache import capture_key

    return capture_key(
        pageload_config,
        sites,
        n_samples,
        seed,
        collector={"runner": "resilient", "retry": runner_config.retry},
    )


def collect_resilient(
    sites: Sequence[str],
    n_samples: int,
    pageload_config: Optional[PageLoadConfig] = None,
    seed: int = 0,
    runner_config: Optional[RunnerConfig] = None,
    resume: bool = False,
    progress: Optional[Callable[[str, int], None]] = None,
    cache: Optional["ArtifactStore"] = None,
) -> Tuple[Dataset, CollectionReport]:
    """Convenience wrapper: resilient page-load collection of ``sites``.

    With ``cache`` set, the collected dataset (and its reliability
    report) is stored under a capture key that includes the retry
    policy — retries decide which trials drop, so they shape the
    dataset — but not worker/checkpoint knobs, which only affect wall
    clock.  A warm hit returns ``report.from_cache=True`` and runs no
    trials.  Runs with a ``trial_wall_deadline`` are never cached:
    their outcomes depend on machine speed, not just config.
    """
    runner_config = runner_config or RunnerConfig()
    pageload_config = pageload_config or PageLoadConfig()
    key = resilient_capture_key(
        sites, n_samples, pageload_config, seed, runner_config
    )
    cacheable = cache is not None and key is not None
    if cacheable:
        from repro.cache import CacheKey
        from repro.capture.serialize import dumps_dataset, loads_dataset

        report_key = CacheKey.derive("capture", {"report_for": key.digest})
        data = cache.get_bytes(key)
        if data is not None:
            try:
                dataset = loads_dataset(data)
            except ARTIFACT_DECODE_ERRORS:
                cache._count("corruptions")
            else:
                report = CollectionReport(
                    completed_trials=dataset.num_traces, from_cache=True
                )
                stored = cache.get_bytes(report_key)
                if stored is not None:
                    try:
                        meta = json.loads(stored.decode("utf-8"))
                        report.retries = int(meta.get("retries", 0))
                        report.stalls = int(meta.get("stalls", 0))
                        report.failures = [
                            TrialFailure(**f) for f in meta.get("failures", [])
                        ]
                    except ARTIFACT_DECODE_ERRORS + (TypeError,):
                        cache._count("corruptions")
                return dataset, report
    runner = ResilientRunner(runner_config)
    trial_fn = pageload_trial_fn(pageload_config)
    dataset, report = runner.collect(
        sites, n_samples, trial_fn, seed, resume=resume, progress=progress
    )
    if cacheable and key is not None:
        cache.put_bytes(key, dumps_dataset(dataset), kind="dataset")
        summary = {
            "retries": report.retries,
            "stalls": report.stalls,
            "failures": [asdict(f) for f in report.failures],
        }
        cache.put_bytes(
            report_key,
            json.dumps(summary, sort_keys=True, separators=(",", ":")).encode("utf-8"),
            kind="json",
        )
    return dataset, report
