"""Experiment runners: one module per table/figure of the paper.

* :mod:`~repro.experiments.table2` — k-FP closed-world accuracy under
  split/delay/combined countermeasures at N in {15, 30, 45, All}.
* :mod:`~repro.experiments.figure3` — single-connection throughput
  under the packet-size/TSO-size reduction sweep on a 100 Gb/s link.
* :mod:`~repro.experiments.table1` — the defense taxonomy with
  measured bandwidth/latency overheads.
* :mod:`~repro.experiments.censorship` — accuracy-vs-prefix-length
  curves (the §3 censorship argument).
* :mod:`~repro.experiments.cca_interplay` — §5.1: throughput impact of
  Stob actions under each congestion-control algorithm.
* :mod:`~repro.experiments.cca_identification` — §5.2: passive CCA
  identification with and without Stob.

Extension ablations (testing the paper's claims beyond its own tables):

* :mod:`~repro.experiments.enforcement` — emulated vs stack-enforced
  defenses (the paper's core thesis, §2.3).
* :mod:`~repro.experiments.work_conservation` — §2.3's padding vs
  delaying vs splitting cost to a sharing flow.
* :mod:`~repro.experiments.quic_vs_tcp` — §2.3's "the same will apply
  to QUIC".
* :mod:`~repro.experiments.open_world` — §3's closed-world upper-bound
  caveat, quantified.
* :mod:`~repro.experiments.attack_robustness` — §2.2's manipulation
  taxonomy across attacker families (k-FP / CUMUL / kNN).
* :mod:`~repro.experiments.parameter_sweep` — the §3 "ongoing work"
  split/delay parameter grid.
"""

from repro.experiments.config import ExperimentConfig

__all__ = ["ExperimentConfig"]
