"""§5.1 ablation: Stob actions vs congestion control.

The paper argues packet-sequence control "may conflict with the CCA" —
BBR uses pacing to probe the path, so external departure manipulation
perturbs its model — and suggests gating obfuscation off in sensitive
phases.  This experiment measures bulk-transfer goodput for each CCA
under: no obfuscation, delaying, splitting, and delaying with the
phase gate (no action during BBR STARTUP/DRAIN), plus the distortion
of BBR's bandwidth estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.cc.base import CcPhase
from repro.stack.host import make_flow
from repro.stack.tcp import TcpConfig
from repro.stob.actions import DelayAction, SplitAction
from repro.stob.constraints import PhaseGate
from repro.stob.controller import StobController
from repro.units import mbps, msec, to_mbps


@dataclass
class InterplayResult:
    cca: str
    action: str
    goodput_mbps: float
    retransmissions: int
    timeouts: int
    #: BBR only: final bottleneck-bandwidth estimate relative to the
    #: true path rate; None for loss-based CCAs.  The delivery-rate
    #: estimator samples at segment granularity, so absolute values run
    #: high — the *relative* change under obfuscation is the signal.
    bw_estimate_ratio: Optional[float] = None


def _make_controller(kind: str, seed: int) -> Optional[StobController]:
    if kind == "none":
        return None
    if kind == "delay":
        return StobController(
            action=DelayAction(0.10, 0.30, rng=np.random.default_rng(seed))
        )
    if kind == "split":
        return StobController(action=SplitAction(1200, 2))
    if kind == "delay+gate":
        return StobController(
            action=DelayAction(0.10, 0.30, rng=np.random.default_rng(seed)),
            gate=PhaseGate(gated=(CcPhase.STARTUP, CcPhase.DRAIN)),
        )
    raise ValueError(f"unknown action kind {kind!r}")


def run_interplay(
    ccas: tuple = ("reno", "cubic", "bbr"),
    actions: tuple = ("none", "delay", "split", "delay+gate"),
    rate_mbps: float = 100.0,
    rtt_ms: float = 20.0,
    transfer_mib: int = 30,
    duration: float = 4.0,
    seed: int = 0,
) -> List[InterplayResult]:
    """The goodput grid."""
    results: List[InterplayResult] = []
    for cca in ccas:
        for kind in actions:
            sim = Simulator()
            path = NetworkPath(rate=mbps(rate_mbps), rtt=msec(rtt_ms))
            flow = make_flow(
                sim,
                path,
                client_config=TcpConfig(cc=cca),
                server_config=TcpConfig(cc=cca),
            )
            controller = _make_controller(kind, seed)
            if controller is not None:
                flow.server.segment_controller = controller
            total = transfer_mib * 1024 * 1024
            flow.server.on_established = (
                lambda f=flow, t=total: f.server.write(t)
            )
            flow.connect()
            sim.run(until=duration)
            got = flow.client.receive_buffer.delivered
            elapsed = min(sim.now, duration)
            ratio = None
            if cca == "bbr":
                estimate = flow.server.cca.btl_bw
                ratio = estimate / path.rate if path.rate else None
            results.append(
                InterplayResult(
                    cca=cca,
                    action=kind,
                    goodput_mbps=to_mbps(got / elapsed),
                    retransmissions=flow.server.retransmissions,
                    timeouts=flow.server.timeouts,
                    bw_estimate_ratio=ratio,
                )
            )
    return results


def format_interplay(results: List[InterplayResult]) -> str:
    lines = [
        "§5.1 CCA interplay: bulk goodput under Stob actions",
        f"{'cca':<7} {'action':<12} {'goodput(Mb/s)':>14} {'retx':>6} "
        f"{'RTOs':>5} {'BBR bw est/true':>16}",
    ]
    for r in results:
        ratio = f"{r.bw_estimate_ratio:.2f}" if r.bw_estimate_ratio else "-"
        lines.append(
            f"{r.cca:<7} {r.action:<12} {r.goodput_mbps:>14.1f} "
            f"{r.retransmissions:>6} {r.timeouts:>5} {ratio:>16}"
        )
    return "\n".join(lines)
