"""Emulation vs enforcement: the paper's central claim, measured.

The paper's §2.3 argument is that WF papers *emulate* defenses as
post-hoc trace transforms, while a deployed defense must be *enforced*
by the stack — and the two differ, because enforcement interacts with
congestion control, pacing, ACK clocks and TSO.

This experiment quantifies that gap on the split+delay countermeasure:

* **emulated** — stock page loads, transformed by
  :class:`~repro.defenses.combined.CombinedDefense` (exactly the
  paper's §3 emulation);
* **enforced** — the same page loads with a Stob controller installed
  on the server endpoint (split + delay acting on real transport
  decisions).

Reported per condition: k-FP accuracy, trace-shape statistics, and the
divergence between the two defended distributions (a classifier
trained on emulated traces tested on enforced ones — the realistic
deployment mismatch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.attacks.features.kfp import KfpFeatureExtractor
from repro.capture.dataset import Dataset
from repro.capture.sanitize import sanitize_dataset
from repro.defenses.combined import CombinedDefense
from repro.experiments.config import ExperimentConfig
from repro.experiments.table2 import evaluate_dataset
from repro.ml.forest import RandomForest
from repro.ml.metrics import accuracy_score, mean_std
from repro.stob.actions import ComposedAction, DelayAction, SplitAction
from repro.stob.controller import StobController
from repro.web.pageload import PageLoadConfig, load_page
from repro.web.sites import SITE_CATALOG


def _stob_controller(seed: int) -> StobController:
    return StobController(
        action=ComposedAction(
            SplitAction(1200, 2),
            DelayAction(0.10, 0.30, rng=np.random.default_rng(seed)),
        )
    )


def collect_enforced_dataset(
    n_samples: int,
    config: Optional[PageLoadConfig] = None,
    seed: int = 0,
) -> Dataset:
    """Page loads with Stob split+delay enforced in the server stack."""
    config = config or PageLoadConfig()
    dataset = Dataset()
    root = np.random.default_rng(seed)
    for label in sorted(SITE_CATALOG):
        profile = SITE_CATALOG[label]
        for _ in range(n_samples):
            visit_seed = int(root.integers(0, 2**63))
            rng = np.random.default_rng(visit_seed)
            controller = _stob_controller(visit_seed & 0x7FFFFFFF)
            trace = load_page(
                profile, config, rng, server_controller=controller
            )
            dataset.add(label, trace)
    return dataset


@dataclass
class EnforcementResult:
    """Accuracies and shape statistics for the three conditions."""

    accuracy_original: tuple
    accuracy_emulated: tuple
    accuracy_enforced: tuple
    #: Train-on-emulated, test-on-enforced accuracy: how well the
    #: research emulation transfers to a real deployment.
    transfer_accuracy: float
    mean_packets_original: float
    mean_packets_emulated: float
    mean_packets_enforced: float
    mean_duration_original: float
    mean_duration_emulated: float
    mean_duration_enforced: float


def _shape_stats(dataset: Dataset) -> tuple:
    counts = [len(t) for _l, t in dataset]
    durations = [t.duration for _l, t in dataset]
    return float(np.mean(counts)), float(np.mean(durations))


def run_enforcement_gap(
    config: Optional[ExperimentConfig] = None,
    raw_dataset: Optional[Dataset] = None,
) -> EnforcementResult:
    """Measure the emulation-vs-enforcement gap."""
    config = config or ExperimentConfig()
    if raw_dataset is None:
        from repro.web.pageload import collect_dataset

        raw_dataset = collect_dataset(
            n_samples=config.n_samples, config=config.pageload,
            seed=config.seed,
        )
    original, _ = sanitize_dataset(raw_dataset, balance_to=config.balance_to)
    emulated = original.map(CombinedDefense(seed=config.seed).apply)

    enforced_raw = collect_enforced_dataset(
        n_samples=config.n_samples, config=config.pageload, seed=config.seed
    )
    enforced, _ = sanitize_dataset(enforced_raw, balance_to=config.balance_to)

    extractor = KfpFeatureExtractor()
    acc_orig = mean_std(evaluate_dataset(original, config, extractor))
    acc_emul = mean_std(evaluate_dataset(emulated, config, extractor))
    acc_enfo = mean_std(evaluate_dataset(enforced, config, extractor))

    # Transfer: train on the emulated distribution, attack deployment.
    train_traces, train_y = emulated.to_arrays()
    test_traces, test_y = enforced.to_arrays()
    forest = RandomForest(
        n_estimators=config.n_estimators, random_state=config.seed
    )
    forest.fit(extractor.extract_many(train_traces), train_y)
    transfer = accuracy_score(
        test_y, forest.predict(extractor.extract_many(test_traces))
    )

    packets_o, duration_o = _shape_stats(original)
    packets_m, duration_m = _shape_stats(emulated)
    packets_e, duration_e = _shape_stats(enforced)
    return EnforcementResult(
        accuracy_original=acc_orig,
        accuracy_emulated=acc_emul,
        accuracy_enforced=acc_enfo,
        transfer_accuracy=transfer,
        mean_packets_original=packets_o,
        mean_packets_emulated=packets_m,
        mean_packets_enforced=packets_e,
        mean_duration_original=duration_o,
        mean_duration_emulated=duration_m,
        mean_duration_enforced=duration_e,
    )


def format_enforcement(result: EnforcementResult) -> str:
    def acc(pair):
        return f"{pair[0]:.3f} ± {pair[1]:.3f}"

    return "\n".join(
        [
            "Emulation vs enforcement (split+delay, k-FP closed world)",
            f"{'condition':<12} {'accuracy':>16} {'mean pkts':>10} "
            f"{'mean dur(s)':>12}",
            f"{'original':<12} {acc(result.accuracy_original):>16} "
            f"{result.mean_packets_original:>10.0f} "
            f"{result.mean_duration_original:>12.2f}",
            f"{'emulated':<12} {acc(result.accuracy_emulated):>16} "
            f"{result.mean_packets_emulated:>10.0f} "
            f"{result.mean_duration_emulated:>12.2f}",
            f"{'enforced':<12} {acc(result.accuracy_enforced):>16} "
            f"{result.mean_packets_enforced:>10.0f} "
            f"{result.mean_duration_enforced:>12.2f}",
            "",
            f"train-on-emulated / test-on-enforced accuracy: "
            f"{result.transfer_accuracy:.3f}",
            "(a gap between this and the enforced self-accuracy is the "
            "emulation error the paper warns about)",
        ]
    )
