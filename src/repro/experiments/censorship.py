"""Accuracy-vs-prefix-length curves (the §3 censorship argument).

The paper's key observation on Table 2 is that "the rate at which
k-FP's accuracy increases over N is slower when either defense is
applied", i.e. countermeasures delay confident detection — exactly
what matters to a censor who must block before the download completes.
This runner produces the full curve (accuracy at many prefix lengths
per defense) that the table samples at 15/30/45.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.attacks.features.kfp import KfpFeatureExtractor
from repro.capture.dataset import Dataset
from repro.capture.sanitize import sanitize_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.table2 import evaluate_dataset, make_defenses
from repro.ml.metrics import mean_std
from repro.web.pageload import collect_dataset

DEFAULT_PREFIXES = (5, 10, 15, 20, 30, 45, 60, 90)


@dataclass
class CensorshipPoint:
    defense: str
    n_packets: int
    mean: float
    std: float


def run_censorship_curve(
    config: Optional[ExperimentConfig] = None,
    dataset: Optional[Dataset] = None,
    prefixes: tuple = DEFAULT_PREFIXES,
) -> List[CensorshipPoint]:
    """Accuracy at every prefix length for every defense condition."""
    config = config or ExperimentConfig()
    if dataset is None:
        dataset = collect_dataset(
            n_samples=config.n_samples,
            config=config.pageload,
            seed=config.seed,
        )
    clean, _ = sanitize_dataset(dataset, balance_to=config.balance_to)
    extractor = KfpFeatureExtractor()
    points: List[CensorshipPoint] = []
    for name, defense in make_defenses(config.seed).items():
        for n in prefixes:
            ds = clean.truncate(n).map(defense.apply)
            scores = evaluate_dataset(ds, config, extractor)
            mean, std = mean_std(scores)
            points.append(CensorshipPoint(name, n, mean, std))
    return points


def detection_delay(
    points: List[CensorshipPoint], threshold: float = 0.9
) -> Dict[str, Optional[int]]:
    """First prefix length at which each defense condition reaches the
    accuracy threshold (None = never within the sweep) — the censor's
    'how long until a confident block decision' metric."""
    out: Dict[str, Optional[int]] = {}
    by_defense: Dict[str, List[CensorshipPoint]] = {}
    for point in points:
        by_defense.setdefault(point.defense, []).append(point)
    for name, series in by_defense.items():
        series.sort(key=lambda p: p.n_packets)
        out[name] = next(
            (p.n_packets for p in series if p.mean >= threshold), None
        )
    return out


def format_censorship(points: List[CensorshipPoint]) -> str:
    """Render the curves as a table."""
    prefixes = sorted({p.n_packets for p in points})
    defenses = sorted({p.defense for p in points})
    cell = {(p.defense, p.n_packets): p for p in points}
    lines = [
        "Censorship setting: k-FP accuracy vs observed prefix length",
        f"{'N':>5} | " + " | ".join(f"{d:>15}" for d in defenses),
    ]
    for n in prefixes:
        row = f"{n:>5} | " + " | ".join(
            f"{cell[(d, n)].mean:>7.3f}±{cell[(d, n)].std:.3f}" for d in defenses
        )
        lines.append(row)
    return "\n".join(lines)
