"""Table 2: k-FP accuracy under the kernel-emulable countermeasures.

Pipeline (paper §3):

1. collect 100 visits of each of the 9 sites over the simulated stack;
2. sanitise: drop error traces, IQR-filter on download size, balance
   (the paper lands at 74 traces/site);
3. build 16 datasets: {Original, Split, Delayed, Combined} x
   {first 15, 30, 45 packets defended, everything defended}, with the
   attack then applied to the first N packets (or the full trace);
4. train/evaluate k-FP (random-forest mode) with stratified k-fold
   cross-validation; report mean ± std accuracy.

Note the construction: for column N, the countermeasure is applied to
the first N packets only *and* the classifier sees only the first N
packets — matching "to evaluate the censorship scenario ... we also
apply the countermeasures on the first 15, 30, and 45 packets only"
combined with "the attack [is applied] on only the first few packets
of a network trace".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import TraceAttack
from repro.attacks.features.kfp import KfpFeatureExtractor
from repro.attacks.registry import build_attack
from repro.cache import (
    ArtifactStore,
    CacheKey,
    attack_eval_key,
    cached_arrays,
    cached_dataset,
    cached_json,
    capture_key,
    dataset_key,
    defend_key,
    eval_key,
    features_key,
    sanitize_key,
)
from repro.capture.dataset import Dataset
from repro.capture.sanitize import sanitize_dataset
from repro.defenses.base import TraceDefense
from repro.defenses.registry import build_defense
from repro.experiments.config import ExperimentConfig
from repro.ml.forest import RandomForest
from repro.ml.metrics import accuracy_score, mean_std
from repro.ml.validate import stratified_kfold_indices
from repro.web.pageload import collect_dataset
from repro.web.sites import SITE_CATALOG

#: Column order of the paper's Table 2.
DEFENSE_ORDER = ("original", "split", "delayed", "combined")
#: Row order ("All" handled separately).
N_VALUES = (15, 30, 45)


def make_defenses(seed: int) -> Dict[str, TraceDefense]:
    """The four Table-2 conditions with the paper's parameters,
    resolved through the defense registry (same instances as ever:
    ``build_defense`` round-trips the exact constructor calls)."""
    return {
        "original": build_defense("original"),
        "split": build_defense("split", seed=seed, threshold=1200, factor=2),
        "delayed": build_defense("delayed", seed=seed + 1, low=0.10, high=0.30),
        "combined": build_defense("combined", seed=seed + 2),
    }


def make_attack(
    config: ExperimentConfig, name: str = "kfp", seed: Optional[int] = None
) -> TraceAttack:
    """The experiment-standard configuration of a registered attack.

    Maps the experiment config onto each attack's own hyperparameters
    (the same values the attack-robustness experiment always used) and
    routes ``seed`` through the registry's ``seed_kwarg`` plumbing.
    Worker counts ride along where they are wall-clock-only.
    """
    kwargs: Dict[str, object] = {}
    if name == "kfp":
        kwargs = {"n_estimators": config.n_estimators, "n_jobs": config.workers}
    elif name == "cumul":
        kwargs = {"epochs": 20}
    elif name == "knn":
        kwargs = {"n_neighbors": 3}
    elif name == "tam-mlp":
        kwargs = {"workers": config.workers}
    return build_attack(name, seed=config.seed if seed is None else seed, **kwargs)


def build_datasets(
    clean: Dataset, seed: int
) -> Dict[Tuple[str, object], Dataset]:
    """The 16 evaluation datasets of the paper.

    Key: (defense name, N) with N in {15, 30, 45, "all"}.  For integer
    N the defense acts on the first N packets and the dataset is then
    truncated to N packets; for "all" the defense acts on (and the
    attack sees) the entire trace.
    """
    defenses = make_defenses(seed)
    datasets: Dict[Tuple[str, object], Dataset] = {}
    for name, defense in defenses.items():
        defended_full = clean.map(defense.apply)
        datasets[(name, "all")] = defended_full
        for n in N_VALUES:
            # Countermeasure on the first N packets only: equivalent to
            # defending the truncated prefix, since the classifier sees
            # exactly those N packets.
            datasets[(name, n)] = clean.truncate(n).map(defense.apply)
    return datasets


@dataclass
class Table2Cell:
    """One mean ± std accuracy cell."""

    defense: str
    n: object
    mean: float
    std: float
    fold_scores: List[float]

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f}"


def _fold_scores(
    X: np.ndarray, y: np.ndarray, config: ExperimentConfig
) -> List[float]:
    """k-fold random-forest accuracies over an extracted feature matrix."""
    rng = np.random.default_rng(config.seed)
    scores: List[float] = []
    for fold_index, (train_idx, test_idx) in enumerate(
        stratified_kfold_indices(y, config.n_folds, rng)
    ):
        forest = RandomForest(
            n_estimators=config.n_estimators,
            random_state=config.seed + fold_index,
            n_jobs=config.workers,
        )
        forest.fit(X[train_idx], y[train_idx])
        scores.append(
            accuracy_score(y[test_idx], forest.predict(X[test_idx]))
        )
    return scores


def evaluate_dataset(
    dataset: Dataset,
    config: ExperimentConfig,
    extractor: Optional[KfpFeatureExtractor] = None,
) -> List[float]:
    """k-fold k-FP (random forest) accuracies on one dataset."""
    extractor = extractor or KfpFeatureExtractor()
    traces, y = dataset.to_arrays()
    X = extractor.extract_many(traces, workers=config.workers)
    return _fold_scores(X, y, config)


def evaluate_cached(
    config: ExperimentConfig,
    build: Callable[[], Dataset],
    extractor: Optional[KfpFeatureExtractor] = None,
    cache: Optional[ArtifactStore] = None,
    upstream: Optional[CacheKey] = None,
) -> List[float]:
    """Fold scores for the dataset ``build()`` produces, with feature-
    and eval-level caching.

    ``upstream`` is the cache key of that (defended) dataset; the
    feature key chains onto it, the eval key onto the features.  On a
    warm eval hit neither ``build()`` nor feature extraction runs; on
    an eval miss with warm features only the forests run.  Scores are
    coerced to ``float`` so cold (np.float64) and warm (JSON) paths are
    indistinguishable.  Shared by the Table-2, parameter-sweep and
    adverse-network experiments.
    """
    extractor = extractor or KfpFeatureExtractor()
    if cache is None or upstream is None:
        return [float(s) for s in evaluate_dataset(build(), config, extractor)]
    fkey = features_key(upstream, extractor)
    ekey = eval_key(fkey, config.n_folds, config.n_estimators, config.seed)

    def features() -> dict:
        traces, y = build().to_arrays()
        return {"X": extractor.extract_many(traces, workers=config.workers), "y": y}

    def scores() -> List[float]:
        arrays = cached_arrays(cache, fkey, features)
        return [float(s) for s in _fold_scores(arrays["X"], arrays["y"], config)]

    return cached_json(cache, ekey, scores)


def attack_fold_scores(
    name: str,
    config: ExperimentConfig,
    y: np.ndarray,
    X: Optional[np.ndarray] = None,
    traces: Optional[Sequence] = None,
) -> List[float]:
    """k-fold accuracies of one registered attack.

    Uses the same fold generator and the same per-fold seed schedule
    (``config.seed + fold_index``) as the historical k-FP path, so
    ``attack_fold_scores("kfp", ...)`` on kfp features is bit-identical
    to :func:`_fold_scores`.  ``X`` is the pre-extracted feature matrix
    for attacks with a feature extractor; attacks without one (CUMUL)
    fit on ``traces`` directly.
    """
    rng = np.random.default_rng(config.seed)
    scores: List[float] = []
    for fold_index, (train_idx, test_idx) in enumerate(
        stratified_kfold_indices(y, config.n_folds, rng)
    ):
        attack = make_attack(config, name, seed=config.seed + fold_index)
        if X is not None:
            attack.fit_features(X[train_idx], y[train_idx])
            predicted = attack.predict_features(X[test_idx])
        else:
            if traces is None:
                raise ValueError("attack_fold_scores needs X or traces")
            attack.fit([traces[i] for i in train_idx], y[train_idx])
            predicted = attack.predict([traces[i] for i in test_idx])
        scores.append(float(accuracy_score(y[test_idx], predicted)))
    return scores


def evaluate_cached_attack(
    config: ExperimentConfig,
    build: Callable[[], Dataset],
    attack: str = "kfp",
    cache: Optional[ArtifactStore] = None,
    upstream: Optional[CacheKey] = None,
) -> List[float]:
    """Fold scores of any registered attack, with per-attack caching.

    The generic sibling of :func:`evaluate_cached`: the eval key folds
    in the attack's full spec (:func:`repro.cache.attack_eval_key`), so
    changing one attack's hyperparameters — or adding a new attacker —
    recomputes only that attack's cells while every other attack's fold
    scores (and the shared cached feature matrices) stay warm.
    Attacks that declare a feature ``extractor`` chain a features stage
    onto ``upstream`` and share it across folds; extractor-less attacks
    (CUMUL) fit on the defended traces directly.
    """
    template = make_attack(config, attack)
    extractor = template.extractor

    def scores() -> List[float]:
        if extractor is None:
            traces, y = build().to_arrays()
            return attack_fold_scores(attack, config, y, traces=list(traces))

        def features() -> dict:
            traces, y = build().to_arrays()
            workers = getattr(config, "workers", 1)
            return {"X": extractor.extract_many(traces, workers=workers), "y": y}

        fkey = (
            features_key(upstream, extractor)
            if cache is not None and upstream is not None
            else None
        )
        arrays = cached_arrays(cache, fkey, features)
        return attack_fold_scores(attack, config, arrays["y"], X=arrays["X"])

    if cache is None or upstream is None:
        return scores()
    base = (
        features_key(upstream, extractor) if extractor is not None else upstream
    )
    ekey = attack_eval_key(base, template.spec(), config.n_folds, config.seed)
    return cached_json(cache, ekey, scores)


def dataset_chain(
    config: ExperimentConfig,
    dataset: Optional[Dataset] = None,
    cache: Optional[ArtifactStore] = None,
) -> Tuple[Callable[[], Dataset], Optional[CacheKey]]:
    """The collect → sanitize prefix of the pipeline, lazily.

    Returns ``(get_clean, clean_key)``: a thunk producing the sanitised
    dataset (collected through the cache when none is supplied — at
    most once) and the sanitize-stage cache key anchoring downstream
    keys.  The thunk never runs when every downstream stage hits, which
    is what makes a fully-warm re-run skip collection entirely.
    """
    memo: Dict[str, Dataset] = {}
    if dataset is not None:
        raw_key = dataset_key(dataset) if cache is not None else None

        def get_raw() -> Dataset:
            return dataset

    else:
        raw_key = (
            capture_key(
                config.pageload, sorted(SITE_CATALOG), config.n_samples, config.seed
            )
            if cache is not None
            else None
        )

        def get_raw() -> Dataset:
            if "raw" not in memo:
                memo["raw"] = cached_dataset(
                    cache,
                    raw_key,
                    lambda: collect_dataset(
                        n_samples=config.n_samples,
                        config=config.pageload,
                        seed=config.seed,
                        workers=config.workers,
                    ),
                )
            return memo["raw"]

    clean_key = (
        sanitize_key(raw_key, config.balance_to) if raw_key is not None else None
    )

    def get_clean() -> Dataset:
        if "clean" not in memo:
            memo["clean"] = cached_dataset(
                cache,
                clean_key,
                lambda: sanitize_dataset(get_raw(), balance_to=config.balance_to)[0],
            )
        return memo["clean"]

    return get_clean, clean_key


def run_table2(
    config: Optional[ExperimentConfig] = None,
    dataset: Optional[Dataset] = None,
    cache: Optional[ArtifactStore] = None,
    attack: str = "kfp",
) -> Dict[Tuple[str, object], Table2Cell]:
    """The full Table 2.  ``dataset`` may be supplied to reuse a
    previously collected raw dataset (it is sanitised here).

    With ``cache`` set, every pipeline stage is keyed and memoised:
    a warm re-run touches no simulator, defense or forest code, and a
    partial change (say, a defense parameter) recomputes only the
    stages downstream of it.  Results are identical either way.

    ``attack`` selects any registered attacker.  The default k-FP run
    keeps its historical cache keys and bit-identical numbers; other
    attacks go through :func:`evaluate_cached_attack`, whose keys fold
    in the attack spec so the grids coexist in one store.
    """
    config = config or ExperimentConfig()
    get_clean, clean_key = dataset_chain(config, dataset, cache)
    extractor = KfpFeatureExtractor()
    table: Dict[Tuple[str, object], Table2Cell] = {}
    for name, defense in make_defenses(config.seed).items():
        for n in ("all",) + N_VALUES:
            prefix = None if n == "all" else n
            dkey = (
                defend_key(clean_key, defense, prefix)
                if clean_key is not None
                else None
            )

            def build(defense: TraceDefense = defense, prefix: Optional[int] = prefix) -> Dataset:
                clean = get_clean()
                base = clean if prefix is None else clean.truncate(prefix)
                return base.map(defense.apply)

            if attack == "kfp":
                scores = evaluate_cached(
                    config, build, extractor, cache=cache, upstream=dkey
                )
            else:
                scores = evaluate_cached_attack(
                    config, build, attack, cache=cache, upstream=dkey
                )
            mean, std = mean_std(scores)
            table[(name, n)] = Table2Cell(name, n, mean, std, scores)
    return table


#: Table-header spelling of each registered attack.
ATTACK_TITLES = {
    "kfp": "k-FP Random Forest",
    "cumul": "CUMUL linear-SVM",
    "knn": "feature k-NN",
    "tam-mlp": "TAM + MLP (deep-learning-class)",
}


def format_table2(
    table: Dict[Tuple[str, object], Table2Cell], attack: str = "kfp"
) -> str:
    """Render in the paper's layout."""
    title = ATTACK_TITLES.get(attack, attack)
    lines = [
        f"Table 2: {title} accuracy rates (closed world, 9 sites)",
        f"{'N':>4} | " + " | ".join(f"{d.capitalize():>15}" for d in DEFENSE_ORDER),
    ]
    for n in list(N_VALUES) + ["all"]:
        row = f"{str(n).capitalize() if n == 'all' else n:>4} | "
        row += " | ".join(f"{str(table[(d, n)]):>15}" for d in DEFENSE_ORDER)
        lines.append(row)
    return "\n".join(lines)


def table2_json(
    table: Dict[Tuple[str, object], Table2Cell],
    attack: str,
    config: ExperimentConfig,
) -> Dict[str, object]:
    """A JSON-safe dump of one attack's grid (``results/`` artifacts)."""
    return {
        "experiment": "table2",
        "attack": attack,
        "config": {
            "n_samples": config.n_samples,
            "n_folds": config.n_folds,
            "n_estimators": config.n_estimators,
            "balance_to": config.balance_to,
            "seed": config.seed,
        },
        "cells": [
            {
                "defense": cell.defense,
                "n": cell.n,
                "mean": cell.mean,
                "std": cell.std,
                "fold_scores": [float(s) for s in cell.fold_scores],
            }
            for cell in table.values()
        ],
    }
