"""Shared experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.web.pageload import PageLoadConfig


@dataclass
class ExperimentConfig:
    """Knobs shared by the evaluation pipeline.

    The defaults reproduce the paper's setup: 9 sites, 100 samples,
    IQR sanitisation (the paper ends at 74 traces/site), k-FP with a
    random forest, 5-fold cross-validation for the ± std columns.
    """

    n_samples: int = 100
    seed: int = 2025
    n_folds: int = 5
    n_estimators: int = 150
    balance_to: int = 74
    pageload: PageLoadConfig = field(default_factory=PageLoadConfig)
    #: Packet-prefix lengths for the censorship setting (paper: 15/30/45
    #: plus the full trace).
    prefix_lengths: tuple = (15, 30, 45)
    #: Processes for collection, feature extraction and forest
    #: fit/predict (1 = in-process, 0 = one per core).  Every parallel
    #: path derives randomness from position, so results are
    #: bit-identical for any value.
    workers: int = 1
