"""Shared experiment configuration.

Every experiment module's config is a *frozen* dataclass with a
canonical :meth:`to_dict`: JSON-safe scalars only, stable key order,
nested configs serialised recursively.  That dict is the single
serialised form used both by the CLI (``--json`` output, logs) and by
:mod:`repro.cache` key derivation — freezing guarantees a config
cannot drift between the moment its cache key is computed and the
moment the stage runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict

from repro.web.pageload import PageLoadConfig


def config_to_dict(config: object) -> Dict[str, object]:
    """Canonical dict form of a frozen config dataclass.

    Field order follows the class definition (stable); values are made
    JSON-safe through the cache's canonicalisation rules, so the result
    feeds :func:`repro.cache.canonical.digest` directly.
    """
    from repro.cache.canonical import jsonable

    return {f.name: jsonable(getattr(config, f.name)) for f in fields(config)}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by the evaluation pipeline.

    The defaults reproduce the paper's setup: 9 sites, 100 samples,
    IQR sanitisation (the paper ends at 74 traces/site), k-FP with a
    random forest, 5-fold cross-validation for the ± std columns.

    Frozen: derive variants with :func:`dataclasses.replace`.
    """

    n_samples: int = 100
    seed: int = 2025
    n_folds: int = 5
    n_estimators: int = 150
    balance_to: int = 74
    pageload: PageLoadConfig = field(default_factory=PageLoadConfig)
    #: Packet-prefix lengths for the censorship setting (paper: 15/30/45
    #: plus the full trace).
    prefix_lengths: tuple = (15, 30, 45)
    #: Processes for collection, feature extraction and forest
    #: fit/predict (1 = in-process, 0 = one per core).  Every parallel
    #: path derives randomness from position, so results are
    #: bit-identical for any value — which is why ``workers`` never
    #: enters a cache key.
    workers: int = 1

    def to_dict(self) -> Dict[str, object]:
        return config_to_dict(self)
