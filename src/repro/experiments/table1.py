"""Table 1: the defense taxonomy, with measured overheads.

The paper's Table 1 is a literature taxonomy; its §2.3 adds the cost
claims (FRONT ≈ 80 % bandwidth overhead, QCSD ≈ 309 %, padding is
non-work-conserving, splitting costs only headers, delaying costs no
bandwidth).  This runner prints the taxonomy rows and — for every
defense implemented in :mod:`repro.defenses` — measures bandwidth,
latency and packet-count overheads on the 9-site dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.capture.dataset import Dataset
from repro.defenses import (
    AdaptiveFrontDefense,
    BufloDefense,
    CombinedDefense,
    DelayDefense,
    FrontDefense,
    HttposLiteDefense,
    MorphingDefense,
    RegulatorDefense,
    SplitDefense,
    TamarawDefense,
    WtfPadDefense,
)
from repro.defenses.base import TraceDefense
from repro.defenses.overhead import overhead_summary
from repro.defenses.registry import DEFENSE_TAXONOMY, DefenseInfo
from repro.experiments.config import ExperimentConfig
from repro.web.tracegen import StatisticalTraceGenerator


def measured_defenses(seed: int) -> Dict[str, TraceDefense]:
    """Every runnable defense, Table-1-comparable configuration.

    Split charges duplicated headers (the honest in-stack accounting).
    """
    return {
        "split": SplitDefense(header_bytes=52, seed=seed),
        "delayed": DelayDefense(seed=seed),
        "combined": CombinedDefense(header_bytes=52, seed=seed),
        "front": FrontDefense(seed=seed),
        "wtfpad": WtfPadDefense(seed=seed),
        "buflo": BufloDefense(tau=5.0, seed=seed),
        "tamaraw": TamarawDefense(seed=seed),
        "regulator": RegulatorDefense(seed=seed),
        "httpos": HttposLiteDefense(seed=seed),
        "morphing": MorphingDefense(seed=seed),
        "adaptive-front": AdaptiveFrontDefense(seed=seed),
    }


@dataclass
class Table1Row:
    """Taxonomy row plus measured overheads (None when unimplemented)."""

    info: DefenseInfo
    bandwidth: Optional[float] = None
    latency: Optional[float] = None
    packets: Optional[float] = None


def run_table1(
    config: Optional[ExperimentConfig] = None,
    dataset: Optional[Dataset] = None,
    max_traces: int = 90,
) -> List[Table1Row]:
    """Build the taxonomy with measured overheads.

    ``dataset`` defaults to a statistical 9-site dataset (overheads are
    properties of the transforms, not of transport microbehaviour, so
    the fast generator suffices).
    """
    config = config or ExperimentConfig()
    if dataset is None:
        generator = StatisticalTraceGenerator(seed=config.seed)
        dataset = generator.generate_dataset(n_samples=10, seed=config.seed)
    by_class: Dict[str, Dict[str, float]] = {}
    name_of = {
        "SplitDefense": "split",
        "DelayDefense": "delayed",
        "CombinedDefense": "combined",
        "FrontDefense": "front",
        "WtfPadDefense": "wtfpad",
        "BufloDefense": "buflo",
        "TamarawDefense": "tamaraw",
        "RegulatorDefense": "regulator",
        "HttposLiteDefense": "httpos",
        "MorphingDefense": "morphing",
        "AdaptiveFrontDefense": "adaptive-front",
    }
    defenses = measured_defenses(config.seed)
    for class_name, short in name_of.items():
        by_class[class_name] = overhead_summary(
            dataset, defenses[short], max_traces=max_traces
        )
    # Palette is dataset-level: fit its clusters on this dataset first.
    from repro.defenses import fit_palette

    by_class["PaletteDefense"] = overhead_summary(
        dataset, fit_palette(dataset, seed=config.seed),
        max_traces=max_traces,
    )
    rows: List[Table1Row] = []
    for info in DEFENSE_TAXONOMY:
        row = Table1Row(info=info)
        if info.implemented_as in by_class:
            summary = by_class[info.implemented_as]
            row.bandwidth = summary["bandwidth"]
            row.latency = summary["latency"]
            row.packets = summary["packets"]
        rows.append(row)
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    """Render the taxonomy + overhead table."""
    lines = [
        "Table 1: WF defense summary (taxonomy per the paper; overheads "
        "measured on the 9-site dataset where implemented)",
        f"{'System':<16} {'Target':<10} {'Strategy':<15} "
        f"{'Manipulation':<28} {'BW ovh':>8} {'Lat ovh':>8}",
    ]
    for row in rows:
        info = row.info
        bw = f"{row.bandwidth:+.0%}" if row.bandwidth is not None else "-"
        lat = f"{row.latency:+.0%}" if row.latency is not None else "-"
        lines.append(
            f"{info.system:<16} {info.target:<10} {info.strategy:<15} "
            f"{', '.join(info.manipulations):<28} {bw:>8} {lat:>8}"
        )
    return "\n".join(lines)
