"""Adverse-network evaluation: does split/delay protection survive
retransmission noise?

The paper's Table 2 evaluates the kernel-emulable countermeasures on
clean captures.  But the Stob argument is about *stack-level*
behaviour, and real stacks operate over bursty loss and flapping
links, where retransmissions and timeout gaps reshape exactly the
packet sequences k-FP fingerprints.  This experiment re-runs the
k-FP grid for {Original, Split, Delayed, Combined} under three
network conditions:

* **clean** — the Table-2 path;
* **bursty** — Gilbert–Elliott bursty loss on both directions;
* **flap** — a link that intermittently goes dark for tens of ms.

Collection runs through the resilient runner (retries, stall
detection, optional checkpointing) because faulty-network page loads
can stall; stalled visits are retried with fresh seeds and — if they
keep stalling — dropped and reported rather than poisoning the
dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.attacks.features.kfp import KfpFeatureExtractor
from repro.cache import ArtifactStore, cached_dataset, defend_key, sanitize_key
from repro.capture.sanitize import sanitize_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    CollectionReport,
    RunnerConfig,
    collect_resilient,
    resilient_capture_key,
)
from repro.experiments.table2 import evaluate_cached, make_defenses
from repro.ml.metrics import mean_std
from repro.simnet.faults import FaultSpec, bursty_loss_spec, link_flap_spec
from repro.web.pageload import PageLoadConfig
from repro.web.sites import SITE_CATALOG

#: Grid orders (rows = network condition, columns = defense).
CONDITION_ORDER = ("clean", "bursty", "flap")
DEFENSE_ORDER = ("original", "split", "delayed", "combined")


def default_conditions() -> Dict[str, Optional[FaultSpec]]:
    """The canonical three network conditions."""
    return {
        "clean": None,
        "bursty": bursty_loss_spec(p_enter_bad=0.02, p_exit_bad=0.3, loss_bad=0.4),
        # Mean 0.5 s between dark windows of mean 80 ms: long enough to
        # force RTO-class gaps into most sub-second page loads.
        "flap": link_flap_spec(up_mean=0.5, down_mean=0.08),
    }


@dataclass(frozen=True)
class AdverseConfig:
    """Configuration of the adverse-network grid (frozen; use
    :func:`dataclasses.replace` for variants)."""

    base: ExperimentConfig = field(default_factory=ExperimentConfig)
    conditions: Dict[str, Optional[FaultSpec]] = field(
        default_factory=default_conditions
    )
    runner: RunnerConfig = field(default_factory=RunnerConfig)
    #: Directory for per-condition checkpoints (None disables).
    checkpoint_dir: Optional[str] = None
    sites: Optional[List[str]] = None

    def to_dict(self) -> dict:
        from repro.experiments.config import config_to_dict

        return config_to_dict(self)


@dataclass
class AdverseCell:
    """One (condition, defense) accuracy cell."""

    condition: str
    defense: str
    mean: float
    std: float
    fold_scores: List[float]

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f}"


@dataclass
class AdverseResult:
    """The full grid plus per-condition collection reliability reports."""

    cells: Dict[Tuple[str, str], AdverseCell]
    reports: Dict[str, CollectionReport]


def _condition_pageload(base: PageLoadConfig, spec: Optional[FaultSpec]) -> PageLoadConfig:
    """The base page-load config with this condition's faults injected."""
    return replace(base, fault_spec=spec)


def run_adverse(
    config: Optional[AdverseConfig] = None,
    resume: bool = False,
    cache: Optional[ArtifactStore] = None,
) -> AdverseResult:
    """Collect per-condition datasets (resiliently) and evaluate the
    k-FP grid on full traces.

    With ``cache`` set, each condition's collected dataset and every
    downstream sanitize/defend/features/eval artifact is keyed and
    reused; a fully-warm re-run executes no page loads and no forests.
    """
    import os

    config = config or AdverseConfig()
    base = config.base
    sites = config.sites or sorted(SITE_CATALOG)
    extractor = KfpFeatureExtractor()
    cells: Dict[Tuple[str, str], AdverseCell] = {}
    reports: Dict[str, CollectionReport] = {}
    for condition in CONDITION_ORDER:
        if condition not in config.conditions:
            continue
        spec = config.conditions[condition]
        pageload = _condition_pageload(base.pageload, spec)
        runner_config = config.runner
        if config.checkpoint_dir is not None:
            # replace() keeps every other knob (retry, workers, chunk
            # size, ...) from the configured runner.
            runner_config = replace(
                config.runner,
                checkpoint_path=os.path.join(
                    config.checkpoint_dir, f"adverse_{condition}.ckpt.npz"
                ),
            )
        dataset, report = collect_resilient(
            sites,
            base.n_samples,
            pageload_config=pageload,
            seed=base.seed,
            runner_config=runner_config,
            resume=resume,
            cache=cache,
        )
        reports[condition] = report
        if dataset.num_traces == 0:
            raise RuntimeError(
                f"condition {condition!r} collected zero usable traces "
                f"({report.summary()}); every trial stalled or failed"
            )
        raw_key = (
            resilient_capture_key(
                sites, base.n_samples, pageload, base.seed, config.runner
            )
            if cache is not None
            else None
        )
        clean_key = (
            sanitize_key(raw_key, base.balance_to)
            if raw_key is not None
            else None
        )
        clean = cached_dataset(
            cache,
            clean_key,
            lambda: sanitize_dataset(dataset, balance_to=base.balance_to)[0],
        )
        for name, defense in make_defenses(base.seed).items():
            dkey = (
                defend_key(clean_key, defense)
                if clean_key is not None
                else None
            )
            scores = evaluate_cached(
                base,
                lambda defense=defense: clean.map(defense.apply),
                extractor,
                cache=cache,
                upstream=dkey,
            )
            mean, std = mean_std(scores)
            cells[(condition, name)] = AdverseCell(
                condition, name, mean, std, scores
            )
    return AdverseResult(cells=cells, reports=reports)


def format_adverse(result: AdverseResult) -> str:
    """Render the grid plus the reliability summary."""
    lines = [
        "Adverse-network k-FP accuracy (closed world, full traces)",
        f"{'Condition':>10} | "
        + " | ".join(f"{d.capitalize():>15}" for d in DEFENSE_ORDER),
    ]
    for condition in CONDITION_ORDER:
        if (condition, DEFENSE_ORDER[0]) not in result.cells:
            continue
        row = f"{condition:>10} | " + " | ".join(
            f"{str(result.cells[(condition, d)]):>15}" for d in DEFENSE_ORDER
        )
        lines.append(row)
    lines.append("")
    lines.append("Collection reliability:")
    for condition, report in result.reports.items():
        lines.append(f"  {condition:>10}: {report.summary()}")
        for failure in report.failures:
            lines.append(
                f"    dropped {failure.label}[{failure.index}] after "
                f"{failure.attempts} attempts ({failure.error}: {failure.message})"
            )
    return "\n".join(lines)
