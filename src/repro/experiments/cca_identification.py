"""§5.2 ablation: passive CCA identification, with and without Stob.

"Some users may wish to prevent their CCA from being identified,
because it potentially reveals other information, such as the OS
kernel and application identity."  We train the passive identifier of
:mod:`repro.attacks.cca_id` on undefended bulk flows and measure its
accuracy on (a) undefended flows and (b) flows shaped by a Stob delay
action — obfuscation should push accuracy toward chance (1/3).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.attacks.cca_id import CCA_NAMES, CcaIdentifier, collect_cca_traces
from repro.stob.actions import ComposedAction, DelayAction, SplitAction
from repro.stob.controller import StobController


def _stob_factory(seed: int):
    counter = {"n": 0}

    def make() -> StobController:
        counter["n"] += 1
        return StobController(
            action=ComposedAction(
                SplitAction(1200, 2),
                DelayAction(
                    0.10, 0.30, rng=np.random.default_rng(seed + counter["n"])
                ),
            )
        )

    return make


@dataclass
class CcaIdResult:
    baseline_accuracy: float
    defended_accuracy: float
    chance: float
    n_train_per_cca: int
    n_test_per_cca: int


def run_cca_identification(
    n_train_per_cca: int = 12,
    n_test_per_cca: int = 6,
    seed: int = 7,
) -> CcaIdResult:
    """Train on clean flows; test on clean and Stob-defended flows."""
    train_traces, train_y = collect_cca_traces(n_train_per_cca, seed=seed)
    identifier = CcaIdentifier(random_state=seed).fit(train_traces, train_y)

    test_clean, test_y = collect_cca_traces(n_test_per_cca, seed=seed + 1)
    baseline = identifier.score(test_clean, test_y)

    test_defended, defended_y = collect_cca_traces(
        n_test_per_cca, seed=seed + 1, controller_factory=_stob_factory(seed)
    )
    defended = identifier.score(test_defended, defended_y)
    return CcaIdResult(
        baseline_accuracy=baseline,
        defended_accuracy=defended,
        chance=1.0 / len(CCA_NAMES),
        n_train_per_cca=n_train_per_cca,
        n_test_per_cca=n_test_per_cca,
    )


def format_cca_id(result: CcaIdResult) -> str:
    return "\n".join(
        [
            "§5.2 passive CCA identification (reno / cubic / bbr)",
            f"  identifier accuracy, undefended flows: "
            f"{result.baseline_accuracy:.3f}",
            f"  identifier accuracy, Stob-shaped flows: "
            f"{result.defended_accuracy:.3f}",
            f"  chance level: {result.chance:.3f}",
        ]
    )
