"""Work-conservation of the obfuscation primitives (§2.3).

"Padding is worse than timing control, because it wastes network
bandwidth in a non-work-conserving manner.  Timing manipulation, such
as delaying packets, leaves the idle resource for other flows.  Using
smaller packet sizes is not as harmful as padding."

Setup: two flows share one bottleneck.  Flow A (the defended web
server) applies one primitive — nothing, delaying, splitting, or
constant-rate dummy padding.  Flow B is an innocent bulk transfer.
Measured: flow B's goodput under each condition.  Padding should be
the only primitive that visibly taxes B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.host import Host, link_hosts, next_flow_id
from repro.stack.tcp import TcpConfig
from repro.stob.actions import DelayAction, SplitAction
from repro.stob.controller import StobController
from repro.stob.cover import CoverTrafficShaper
from repro.units import mbps, msec, to_mbps

PRIMITIVES = ("none", "delay", "split", "padding")


@dataclass
class WorkConservationResult:
    primitive: str
    victim_goodput_mbps: float
    defended_goodput_mbps: float
    cover_mbps: float


def _run_condition(
    primitive: str,
    rate_mbps: float,
    rtt_ms: float,
    duration: float,
    padding_fraction: float,
    seed: int,
) -> WorkConservationResult:
    sim = Simulator()
    path = NetworkPath(rate=mbps(rate_mbps), rtt=msec(rtt_ms), buffer_bdp=1.5)
    server = Host(sim, "servers")
    client = Host(sim, "clients")
    # Both flows originate at the server host: its access link is the
    # shared bottleneck.
    reverse, forward = link_hosts(sim, server, client, path)

    flow_a = next_flow_id()
    flow_b = next_flow_id()
    a_tx = server.add_endpoint(flow_a, direction=-1, config=TcpConfig())
    a_rx = client.add_endpoint(flow_a, direction=1, config=TcpConfig())
    b_tx = server.add_endpoint(flow_b, direction=-1, config=TcpConfig())
    b_rx = client.add_endpoint(flow_b, direction=1, config=TcpConfig())

    shaper = None
    if primitive == "delay":
        a_tx.segment_controller = StobController(
            action=DelayAction(0.10, 0.30, rng=np.random.default_rng(seed))
        )
    elif primitive == "split":
        a_tx.segment_controller = StobController(action=SplitAction(1200, 2))
    elif primitive == "padding":
        shaper = CoverTrafficShaper(
            sim, a_tx, rate_bytes_per_sec=mbps(rate_mbps * padding_fraction)
        )
    elif primitive != "none":
        raise ValueError(f"unknown primitive {primitive!r}")

    # Flow A: a moderate, application-limited stream (a busy web
    # server's share); Flow B: greedy bulk.
    chunk = int(mbps(rate_mbps) * 0.25 * 0.05)  # 25% load in 50ms chunks

    def feed_a() -> None:
        a_tx.write(chunk)
        sim.schedule(0.05, feed_a)

    def start_a() -> None:
        feed_a()
        if shaper is not None:
            shaper.start()

    a_tx.on_established = start_a
    b_tx.on_established = lambda: b_tx.write(1 << 30)

    a_rx.connect()
    b_rx.connect()
    sim.run(until=duration)
    return WorkConservationResult(
        primitive=primitive,
        victim_goodput_mbps=to_mbps(b_tx.delivered / duration),
        defended_goodput_mbps=to_mbps(a_tx.delivered / duration),
        cover_mbps=to_mbps((shaper.injected_bytes if shaper else 0) / duration),
    )


def run_work_conservation(
    rate_mbps: float = 50.0,
    rtt_ms: float = 20.0,
    duration: float = 6.0,
    padding_fraction: float = 0.4,
    seed: int = 0,
) -> List[WorkConservationResult]:
    """B's goodput under each of A's obfuscation primitives."""
    return [
        _run_condition(
            primitive, rate_mbps, rtt_ms, duration, padding_fraction, seed
        )
        for primitive in PRIMITIVES
    ]


def format_work_conservation(
    results: List[WorkConservationResult],
) -> str:
    lines = [
        "§2.3 work conservation: a victim bulk flow shares the bottleneck "
        "with a defended server",
        f"{'primitive':<10} {'victim goodput(Mb/s)':>21} "
        f"{'defended goodput':>17} {'cover traffic':>14}",
    ]
    for r in results:
        lines.append(
            f"{r.primitive:<10} {r.victim_goodput_mbps:>21.1f} "
            f"{r.defended_goodput_mbps:>17.1f} {r.cover_mbps:>14.1f}"
        )
    return "\n".join(lines)
