"""Countermeasure parameter sweeps (the paper's declared next step).

§3: "It is important to note that splitting packets also inherently
adds a delay ... It may be that a combination of delay and packet size
would have compound effects in the features and the overheads.  An
evaluation of the effects of combinations of these variables and more
complex defensive strategies is our ongoing work."

This experiment runs that evaluation: a grid over the split threshold
and the delay intensity, measuring k-FP accuracy (protection) and
bandwidth/latency overheads (cost) at each point — the
protection-vs-cost surface a deployer would tune on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.attacks.features.kfp import KfpFeatureExtractor
from repro.capture.dataset import Dataset
from repro.capture.sanitize import sanitize_dataset
from repro.defenses.combined import CombinedDefense
from repro.defenses.delay import DelayDefense
from repro.defenses.overhead import overhead_summary
from repro.defenses.split import SplitDefense
from repro.experiments.config import ExperimentConfig
from repro.experiments.table2 import evaluate_dataset
from repro.ml.metrics import mean_std
from repro.web.pageload import collect_dataset

#: Split thresholds (bytes).  The paper fixed 1200 "to prevent creating
#: packets smaller than the minimum TCP MSS of 536 bytes"; lower values
#: split more aggressively.
SPLIT_THRESHOLDS = (1400, 1200, 1000, 800)
#: Delay intensities: the (low, high) IAT inflation ranges.  The paper
#: fixed (0.10, 0.30) "because larger delays could trigger
#: retransmission timeouts".
DELAY_RANGES = ((0.0, 0.0), (0.10, 0.30), (0.25, 0.75), (0.50, 1.50))


@dataclass
class SweepPoint:
    split_threshold: Optional[int]
    delay_low: float
    delay_high: float
    accuracy_mean: float
    accuracy_std: float
    bandwidth_overhead: float
    latency_overhead: float


def _defense(threshold: Optional[int], low: float, high: float, seed: int):
    if threshold is not None and high > 0:
        return CombinedDefense(
            threshold=threshold, low=low, high=high, seed=seed
        )
    if threshold is not None:
        return SplitDefense(threshold=threshold, seed=seed)
    return DelayDefense(low=low, high=high, seed=seed)


def run_parameter_sweep(
    config: Optional[ExperimentConfig] = None,
    dataset: Optional[Dataset] = None,
    thresholds: tuple = SPLIT_THRESHOLDS,
    delay_ranges: tuple = DELAY_RANGES,
) -> List[SweepPoint]:
    """The split-threshold x delay-intensity grid."""
    config = config or ExperimentConfig()
    if dataset is None:
        dataset = collect_dataset(
            n_samples=config.n_samples, config=config.pageload,
            seed=config.seed, workers=config.workers,
        )
    clean, _ = sanitize_dataset(dataset, balance_to=config.balance_to)
    extractor = KfpFeatureExtractor()
    points: List[SweepPoint] = []
    for threshold in thresholds:
        for low, high in delay_ranges:
            if high == 0 and threshold is None:
                continue
            defense = _defense(threshold, low, high, config.seed)
            defended = clean.map(defense.apply)
            mean, std = mean_std(
                evaluate_dataset(defended, config, extractor)
            )
            cost = overhead_summary(clean, defense, max_traces=60)
            points.append(
                SweepPoint(
                    split_threshold=threshold,
                    delay_low=low,
                    delay_high=high,
                    accuracy_mean=mean,
                    accuracy_std=std,
                    bandwidth_overhead=cost["bandwidth"],
                    latency_overhead=cost["latency"],
                )
            )
    return points


def format_parameter_sweep(points: List[SweepPoint]) -> str:
    lines = [
        "Countermeasure parameter sweep (the paper's §3 'ongoing work'):",
        "k-FP accuracy and overheads per (split threshold, delay range)",
        f"{'split':>6} {'delay':>12} {'accuracy':>16} {'bw ovh':>8} "
        f"{'lat ovh':>8}",
    ]
    for p in points:
        delay = f"{p.delay_low:.2f}-{p.delay_high:.2f}"
        lines.append(
            f"{p.split_threshold or '-':>6} {delay:>12} "
            f"{p.accuracy_mean:>8.3f} ± {p.accuracy_std:.3f} "
            f"{p.bandwidth_overhead:>+8.1%} {p.latency_overhead:>+8.1%}"
        )
    return "\n".join(lines)
