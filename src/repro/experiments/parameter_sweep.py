"""Countermeasure parameter sweeps (the paper's declared next step).

§3: "It is important to note that splitting packets also inherently
adds a delay ... It may be that a combination of delay and packet size
would have compound effects in the features and the overheads.  An
evaluation of the effects of combinations of these variables and more
complex defensive strategies is our ongoing work."

This experiment runs that evaluation: a grid over the split threshold
and the delay intensity, measuring k-FP accuracy (protection) and
bandwidth/latency overheads (cost) at each point — the
protection-vs-cost surface a deployer would tune on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.attacks.features.kfp import KfpFeatureExtractor
from repro.cache import ArtifactStore, cached_json, defend_key, overhead_key
from repro.capture.dataset import Dataset
from repro.defenses.combined import CombinedDefense
from repro.defenses.delay import DelayDefense
from repro.defenses.overhead import overhead_summary
from repro.defenses.split import SplitDefense
from repro.experiments.config import ExperimentConfig, config_to_dict
from repro.experiments.table2 import dataset_chain, evaluate_cached
from repro.ml.metrics import mean_std

#: Split thresholds (bytes).  The paper fixed 1200 "to prevent creating
#: packets smaller than the minimum TCP MSS of 536 bytes"; lower values
#: split more aggressively.
SPLIT_THRESHOLDS = (1400, 1200, 1000, 800)
#: Delay intensities: the (low, high) IAT inflation ranges.  The paper
#: fixed (0.10, 0.30) "because larger delays could trigger
#: retransmission timeouts".
DELAY_RANGES = ((0.0, 0.0), (0.10, 0.30), (0.25, 0.75), (0.50, 1.50))


@dataclass(frozen=True)
class SweepConfig:
    """Typed configuration of the sweep grid (frozen; use
    :func:`dataclasses.replace` for variants).

    Replaces the old ad-hoc ``thresholds=`` / ``delay_ranges=`` kwargs
    of :func:`run_parameter_sweep`, so the grid is part of the single
    canonical config the CLI prints and the cache digests.
    """

    base: ExperimentConfig = field(default_factory=ExperimentConfig)
    thresholds: tuple = SPLIT_THRESHOLDS
    delay_ranges: tuple = DELAY_RANGES
    #: Traces sampled per grid point for the overhead measurement.
    overhead_traces: int = 60

    def to_dict(self) -> dict:
        return config_to_dict(self)


@dataclass
class SweepPoint:
    split_threshold: Optional[int]
    delay_low: float
    delay_high: float
    accuracy_mean: float
    accuracy_std: float
    bandwidth_overhead: float
    latency_overhead: float


def _defense(threshold: Optional[int], low: float, high: float, seed: int):
    if threshold is not None and high > 0:
        return CombinedDefense(
            threshold=threshold, low=low, high=high, seed=seed
        )
    if threshold is not None:
        return SplitDefense(threshold=threshold, seed=seed)
    return DelayDefense(low=low, high=high, seed=seed)


def run_parameter_sweep(
    config: Optional[Union[SweepConfig, ExperimentConfig]] = None,
    dataset: Optional[Dataset] = None,
    cache: Optional[ArtifactStore] = None,
) -> List[SweepPoint]:
    """The split-threshold x delay-intensity grid.

    ``config`` is a :class:`SweepConfig`; a bare
    :class:`ExperimentConfig` is accepted and wrapped with the default
    grid.  With ``cache`` set, each grid point's accuracy and overhead
    artifacts are keyed on the defense's ``params()`` digest, so
    re-running with an extended grid recomputes only the new points.
    """
    if config is None:
        config = SweepConfig()
    elif isinstance(config, ExperimentConfig):
        config = SweepConfig(base=config)
    base = config.base
    get_clean, clean_key = dataset_chain(base, dataset, cache)
    extractor = KfpFeatureExtractor()
    points: List[SweepPoint] = []
    for threshold in config.thresholds:
        for low, high in config.delay_ranges:
            if high == 0 and threshold is None:
                continue
            defense = _defense(threshold, low, high, base.seed)
            dkey = (
                defend_key(clean_key, defense)
                if clean_key is not None
                else None
            )

            def build(defense=defense):
                return get_clean().map(defense.apply)

            mean, std = mean_std(
                evaluate_cached(
                    base, build, extractor, cache=cache, upstream=dkey
                )
            )
            okey = (
                overhead_key(clean_key, defense, config.overhead_traces)
                if clean_key is not None
                else None
            )

            def measure_cost(defense=defense):
                cost = overhead_summary(
                    get_clean(), defense, max_traces=config.overhead_traces
                )
                return {k: float(v) for k, v in cost.items()}

            cost = cached_json(cache, okey, measure_cost)
            points.append(
                SweepPoint(
                    split_threshold=threshold,
                    delay_low=low,
                    delay_high=high,
                    accuracy_mean=mean,
                    accuracy_std=std,
                    bandwidth_overhead=cost["bandwidth"],
                    latency_overhead=cost["latency"],
                )
            )
    return points


def format_parameter_sweep(points: List[SweepPoint]) -> str:
    lines = [
        "Countermeasure parameter sweep (the paper's §3 'ongoing work'):",
        "k-FP accuracy and overheads per (split threshold, delay range)",
        f"{'split':>6} {'delay':>12} {'accuracy':>16} {'bw ovh':>8} "
        f"{'lat ovh':>8}",
    ]
    for p in points:
        delay = f"{p.delay_low:.2f}-{p.delay_high:.2f}"
        lines.append(
            f"{p.split_threshold or '-':>6} {delay:>12} "
            f"{p.accuracy_mean:>8.3f} ± {p.accuracy_std:.3f} "
            f"{p.bandwidth_overhead:>+8.1%} {p.latency_overhead:>+8.1%}"
        )
    return "\n".join(lines)
