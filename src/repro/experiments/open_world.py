"""Open-world website fingerprinting evaluation.

The paper's §3 evaluation is closed-world ("the most favorable
conditions for the attacker, therefore our results represent an upper
bound on attack success").  The WF literature's deployment-realistic
setting is *open-world*: the client may also visit unmonitored sites
the attacker has never seen.  k-FP handles it with its leaf-vector
k-NN and a unanimity rule — classify as a monitored site only when all
k nearest training fingerprints agree; otherwise output "unmonitored".

This experiment builds an open world from the nine monitored profiles
plus randomly generated background sites
(:func:`repro.web.sites.random_profile`) and reports the attacker's
precision/recall with and without the paper's countermeasures —
showing where the closed-world upper bound sits relative to realistic
conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.attacks.kfp import KFingerprinting
from repro.attacks.registry import build_attack
from repro.capture.dataset import Dataset
from repro.defenses.base import NoDefense, TraceDefense
from repro.defenses.combined import CombinedDefense
from repro.web.sites import random_profile
from repro.web.tracegen import StatisticalTraceGenerator

UNMONITORED = -1


def build_open_world(
    n_monitored_samples: int = 20,
    n_background_sites: int = 40,
    n_background_samples: int = 2,
    seed: int = 0,
) -> Tuple[Dataset, Dataset]:
    """(monitored, background) datasets from the statistical generator.

    The generator keeps this evaluation cheap; open-world conclusions
    depend on relative separability, which the profiles control.
    """
    generator = StatisticalTraceGenerator(seed=seed)
    monitored = generator.generate_dataset(
        n_samples=n_monitored_samples, seed=seed
    )
    rng = np.random.default_rng(seed + 1)
    background = Dataset()
    gen_rng = np.random.default_rng(seed + 2)
    for index in range(n_background_sites):
        profile = random_profile(f"background{index:03d}", rng)
        for _ in range(n_background_samples):
            background.add(profile.name, generator.generate(profile, gen_rng))
    return monitored, background


@dataclass
class OpenWorldResult:
    defense: str
    #: Of test instances claimed to be some monitored site, the
    #: fraction that really were that site.
    precision: float
    #: Of monitored test instances, the fraction correctly identified.
    recall: float
    #: Of unmonitored test instances, the fraction wrongly claimed
    #: monitored (the base-rate hazard for censors).
    false_positive_rate: float
    n_monitored_test: int
    n_background_test: int


def evaluate_open_world(
    monitored: Dataset,
    background: Dataset,
    defense: Optional[TraceDefense] = None,
    k_neighbors: int = 3,
    n_estimators: int = 80,
    test_fraction: float = 0.3,
    seed: int = 0,
    attack: str = "kfp",
) -> OpenWorldResult:
    """One open-world evaluation round.

    ``attack`` names any registered attacker.  k-FP (the default) uses
    its leaf-vector k-NN with the unanimity rule — the original
    paper's open-world matcher.  Every other attack trains with an
    explicit UNMONITORED background class and rejects by predicting
    it: weaker than a calibrated rejector, but the standard closed-set
    adaptation, and enough to compare attackers' base-rate behaviour.
    """
    defense = defense or NoDefense()
    monitored = monitored.map(defense.apply)
    background = background.map(defense.apply)

    rng = np.random.default_rng(seed)
    train_mon, test_mon = monitored.train_test_split(test_fraction, rng)
    # Background splits by site: the attacker never saw test sites.
    labels = background.labels
    split = max(1, int(len(labels) * (1 - test_fraction)))
    train_bg = background.subset(labels[:split])
    test_bg = background.subset(labels[split:])

    train_traces, train_y = train_mon.to_arrays()
    bg_traces, _ = train_bg.to_arrays()
    unmon_class = len(train_mon.labels)
    # Background training data gets the UNMONITORED label so the
    # unanimity rule (or the generic attack's classifier) has negative
    # neighbours to disagree with.
    y = np.concatenate(
        [train_y, np.full(len(bg_traces), unmon_class)]
    )

    if attack == "kfp":
        kfp = KFingerprinting(
            n_estimators=n_estimators,
            mode="leaf-knn",
            k_neighbors=k_neighbors,
            random_state=seed,
        )
        X = kfp.extractor.extract_many(list(train_traces) + list(bg_traces))
        kfp.fit_features(X, y)

        def predict(dataset: Dataset) -> np.ndarray:
            traces, _ = dataset.to_arrays()
            features = kfp.extractor.extract_many(traces)
            leaves = kfp.forest.apply(features)
            votes = kfp._leaf_knn.predict_unanimous(leaves, fallback=UNMONITORED)
            votes[votes == unmon_class] = UNMONITORED
            return votes

    else:
        model = build_attack(attack, seed=seed)
        model.fit(list(train_traces) + list(bg_traces), y)

        def predict(dataset: Dataset) -> np.ndarray:
            traces, _ = dataset.to_arrays()
            votes = np.asarray(model.predict(list(traces)))
            votes[votes == unmon_class] = UNMONITORED
            return votes

    mon_pred = predict(test_mon)
    _traces, mon_true = test_mon.to_arrays()
    bg_pred = predict(test_bg)

    claimed_mon = (mon_pred != UNMONITORED).sum() + (
        bg_pred != UNMONITORED
    ).sum()
    true_claims = (mon_pred == mon_true).sum()
    precision = float(true_claims / claimed_mon) if claimed_mon else 1.0
    recall = float((mon_pred == mon_true).mean())
    fpr = float((bg_pred != UNMONITORED).mean()) if len(bg_pred) else 0.0
    return OpenWorldResult(
        defense=defense.name,
        precision=precision,
        recall=recall,
        false_positive_rate=fpr,
        n_monitored_test=len(mon_pred),
        n_background_test=len(bg_pred),
    )


def run_open_world(
    seed: int = 0,
    n_monitored_samples: int = 20,
    n_background_sites: int = 40,
    attack: str = "kfp",
) -> List[OpenWorldResult]:
    """Open-world precision/recall, undefended vs combined defense."""
    monitored, background = build_open_world(
        n_monitored_samples=n_monitored_samples,
        n_background_sites=n_background_sites,
        seed=seed,
    )
    return [
        evaluate_open_world(
            monitored, background, NoDefense(), seed=seed, attack=attack
        ),
        evaluate_open_world(
            monitored, background, CombinedDefense(seed=seed), seed=seed,
            attack=attack,
        ),
    ]


def format_open_world(results: List[OpenWorldResult], attack: str = "kfp") -> str:
    matcher = (
        "k-FP (unanimous leaf-kNN)"
        if attack == "kfp"
        else f"{attack} (background-class rejection)"
    )
    lines = [
        f"Open-world {matcher}: monitored 9 sites vs "
        "unseen background sites",
        f"{'defense':<10} {'precision':>10} {'recall':>8} {'FPR':>7} "
        f"{'mon/bg test':>12}",
    ]
    for r in results:
        lines.append(
            f"{r.defense:<10} {r.precision:>10.3f} {r.recall:>8.3f} "
            f"{r.false_positive_rate:>7.3f} "
            f"{r.n_monitored_test:>5}/{r.n_background_test}"
        )
    return "\n".join(lines)
