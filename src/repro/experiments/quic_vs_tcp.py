"""TCP vs QUIC website fingerprinting (the paper's §2.3 QUIC claim).

The paper argues the stack-control problem carries over to QUIC:
packet sizes and datagram scheduling are QUIC's decisions, not the
application's.  Related work it cites ("Website fingerprinting in the
age of QUIC", QCSD) found QUIC traffic roughly as fingerprintable as
TLS/TCP.  This experiment loads the same pages over both transports
and compares:

* k-FP closed-world accuracy on TCP traces vs QUIC traces,
* cross-transport transfer (train on TCP, test on QUIC) — does an
  attacker need per-transport training data?
* accuracy on QUIC defended by a Stob split+delay controller —
  demonstrating the obfuscation layer is transport-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.attacks.features.kfp import KfpFeatureExtractor
from repro.capture.dataset import Dataset
from repro.capture.sanitize import sanitize_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.table2 import evaluate_dataset
from repro.ml.forest import RandomForest
from repro.ml.metrics import accuracy_score, mean_std
from repro.quic.pageload import collect_quic_dataset
from repro.stob.actions import ComposedAction, DelayAction, SplitAction
from repro.stob.controller import StobController
from repro.web.pageload import collect_dataset


def _stob_factory(seed: int):
    state = {"n": 0}

    def make() -> StobController:
        state["n"] += 1
        return StobController(
            action=ComposedAction(
                SplitAction(1200, 2),
                DelayAction(
                    0.10, 0.30, rng=np.random.default_rng(seed + state["n"])
                ),
            )
        )

    return make


@dataclass
class QuicVsTcpResult:
    accuracy_tcp: Tuple[float, float]
    accuracy_quic: Tuple[float, float]
    accuracy_quic_stob: Tuple[float, float]
    #: Train on TCP traces, test on QUIC traces of the same sites.
    cross_transport_accuracy: float


def run_quic_vs_tcp(
    config: Optional[ExperimentConfig] = None,
    tcp_dataset: Optional[Dataset] = None,
) -> QuicVsTcpResult:
    """Collect both transports' datasets and compare k-FP accuracy."""
    config = config or ExperimentConfig()
    if tcp_dataset is None:
        tcp_dataset = collect_dataset(
            n_samples=config.n_samples, config=config.pageload,
            seed=config.seed,
        )
    quic_dataset = collect_quic_dataset(
        n_samples=config.n_samples, config=config.pageload, seed=config.seed
    )
    quic_stob = collect_quic_dataset(
        n_samples=config.n_samples,
        config=config.pageload,
        seed=config.seed,
        controller_factory=_stob_factory(config.seed),
    )
    tcp_clean, _ = sanitize_dataset(tcp_dataset, balance_to=config.balance_to)
    quic_clean, _ = sanitize_dataset(quic_dataset, balance_to=config.balance_to)
    stob_clean, _ = sanitize_dataset(quic_stob, balance_to=config.balance_to)

    extractor = KfpFeatureExtractor()
    acc_tcp = mean_std(evaluate_dataset(tcp_clean, config, extractor))
    acc_quic = mean_std(evaluate_dataset(quic_clean, config, extractor))
    acc_stob = mean_std(evaluate_dataset(stob_clean, config, extractor))

    train_traces, train_y = tcp_clean.to_arrays()
    test_traces, test_y = quic_clean.to_arrays()
    forest = RandomForest(
        n_estimators=config.n_estimators, random_state=config.seed
    )
    forest.fit(extractor.extract_many(train_traces), train_y)
    cross = accuracy_score(
        test_y, forest.predict(extractor.extract_many(test_traces))
    )
    return QuicVsTcpResult(
        accuracy_tcp=acc_tcp,
        accuracy_quic=acc_quic,
        accuracy_quic_stob=acc_stob,
        cross_transport_accuracy=cross,
    )


def format_quic_vs_tcp(result: QuicVsTcpResult) -> str:
    def acc(pair):
        return f"{pair[0]:.3f} ± {pair[1]:.3f}"

    return "\n".join(
        [
            "TCP vs QUIC fingerprinting (k-FP closed world, 9 sites)",
            f"  TCP traces              : {acc(result.accuracy_tcp)}",
            f"  QUIC traces             : {acc(result.accuracy_quic)}",
            f"  QUIC + Stob split+delay : {acc(result.accuracy_quic_stob)}",
            f"  train-TCP / test-QUIC   : "
            f"{result.cross_transport_accuracy:.3f}",
            "",
            "Reading: QUIC is roughly as fingerprintable as TCP (§2.3's "
            "'the same will apply to QUIC'); the Stob controller plugs "
            "into either transport unchanged.",
        ]
    )
