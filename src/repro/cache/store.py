"""The on-disk artifact store.

Layout (all under one root directory)::

    root/
      objects/<stage>/<aa>/<digest>.bin    payload bytes
      objects/<stage>/<aa>/<digest>.json   entry metadata (sha256, size)
      runs/<pid>-<seq>.json                per-run counter snapshots

Concurrency model — the store must be safe under PR 2's multiprocess
fan-out without any locking:

* **writes are atomic**: payloads land in a unique ``.tmp`` file first
  and are published with ``os.replace``; the metadata sidecar is
  written the same way *after* the payload, so a reader that sees
  metadata always sees a fully published payload.  Two processes
  computing the same key both write; last rename wins and both files
  are complete at every instant.
* **reads are lock-free**: read metadata, read payload, verify the
  payload's SHA-256 against the metadata.  Any mismatch (torn file,
  bit rot, truncation) is counted as a corruption, the entry is
  evicted best-effort, and the caller falls back to recomputing.

Counters (hits/misses/writes/corruptions/bytes) are kept per store
instance, mirrored into the :mod:`repro.obs` registry when a session
is active, and persisted per run under ``runs/`` so ``repro cache
stats`` can report hit rates across invocations.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cache.keys import CacheKey
from repro.errors import ARTIFACT_DECODE_ERRORS
from repro.ioutil import atomic_write_bytes
from repro.obs import runtime as _obs_runtime

#: Store format version, recorded in every metadata sidecar.
STORE_SCHEMA = "repro.cache/artifact"
STORE_VERSION = 1

_COUNTER_NAMES = (
    "hits", "misses", "writes", "corruptions", "bytes_read", "bytes_written",
)


@dataclass
class StoreStats:
    """Contents summary of a store (what ``repro cache stats`` prints)."""

    entries: int = 0
    payload_bytes: int = 0
    #: stage -> (entry count, payload bytes)
    by_stage: Dict[str, Tuple[int, int]] = field(default_factory=dict)


@dataclass
class GcResult:
    """What one ``gc`` pass did."""

    removed_entries: int = 0
    freed_bytes: int = 0
    pruned_tmp: int = 0


@dataclass
class VerifyResult:
    """What one ``verify`` pass found."""

    ok: int = 0
    corrupt: List[str] = field(default_factory=list)
    deleted: int = 0


class ArtifactStore:
    """A content-addressed artifact store rooted at ``root``."""

    _tmp_seq = itertools.count()

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.counters: Dict[str, int] = {name: 0 for name in _COUNTER_NAMES}
        os.makedirs(os.path.join(self.root, "objects"), exist_ok=True)
        os.makedirs(os.path.join(self.root, "runs"), exist_ok=True)

    # -- paths -------------------------------------------------------------

    def _base(self, key: CacheKey) -> str:
        return os.path.join(self.root, "objects", *key.relpath.split("/"))

    def payload_path(self, key: CacheKey) -> str:
        return self._base(key) + ".bin"

    def meta_path(self, key: CacheKey) -> str:
        return self._base(key) + ".json"

    # -- counters ----------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        obs = _obs_runtime.session()
        if obs is not None:
            obs.registry.counter(f"cache.{name}").add(amount)

    # -- write path --------------------------------------------------------

    def _atomic_write(self, path: str, data: bytes) -> None:
        # Cache entries are recomputable by construction, so the
        # durability fsync is skipped: atomicity (no torn files) is the
        # property readers rely on, not power-failure persistence.
        atomic_write_bytes(path, data, fsync=False)

    def put_bytes(self, key: CacheKey, data: bytes, kind: str = "bytes") -> None:
        """Publish ``data`` under ``key`` (atomic; last writer wins)."""
        os.makedirs(os.path.dirname(self._base(key)), exist_ok=True)
        meta = {
            "schema": STORE_SCHEMA,
            "version": STORE_VERSION,
            "stage": key.stage,
            "digest": key.digest,
            "kind": kind,
            "payload_sha256": hashlib.sha256(data).hexdigest(),
            "payload_bytes": len(data),
        }
        # Payload first, metadata second: metadata's existence implies a
        # fully published payload for lock-free readers.
        self._atomic_write(self.payload_path(key), data)
        self._atomic_write(
            self.meta_path(key),
            json.dumps(meta, sort_keys=True, indent=1).encode("utf-8"),
        )
        self._count("writes")
        self._count("bytes_written", len(data))

    # -- read path ---------------------------------------------------------

    def _evict(self, key: CacheKey) -> None:
        for path in (self.meta_path(key), self.payload_path(key)):
            try:
                os.remove(path)
            except OSError:
                pass

    def get_bytes(self, key: CacheKey) -> Optional[bytes]:
        """The payload for ``key``, or ``None`` (miss / corrupt entry).

        A corrupt or truncated entry — payload digest not matching its
        metadata — is counted, evicted best-effort, and reported as a
        miss, so callers transparently fall back to recomputation.
        """
        try:
            with open(self.meta_path(key), "rb") as handle:
                meta = json.loads(handle.read().decode("utf-8"))
            with open(self.payload_path(key), "rb") as handle:
                data = handle.read()
        except ARTIFACT_DECODE_ERRORS:
            if os.path.exists(self.meta_path(key)):
                # Metadata present but unreadable/unparseable: corrupt.
                self._count("corruptions")
                self._evict(key)
            self._count("misses")
            return None
        if (
            meta.get("payload_sha256") != hashlib.sha256(data).hexdigest()
            or meta.get("digest") != key.digest
        ):
            self._count("corruptions")
            self._evict(key)
            self._count("misses")
            return None
        self._count("hits")
        self._count("bytes_read", len(data))
        return data

    def has(self, key: CacheKey) -> bool:
        """Entry present (metadata published)?  Does not verify payload."""
        return os.path.exists(self.meta_path(key))

    # -- maintenance -------------------------------------------------------

    def _iter_meta_paths(self) -> Iterator[str]:
        objects = os.path.join(self.root, "objects")
        for dirpath, _dirnames, filenames in os.walk(objects):
            for name in sorted(filenames):
                if name.endswith(".json"):
                    yield os.path.join(dirpath, name)

    def _entry_from_meta(self, meta_path: str) -> Optional[CacheKey]:
        try:
            with open(meta_path, "rb") as handle:
                meta = json.loads(handle.read().decode("utf-8"))
            return CacheKey(stage=meta["stage"], digest=meta["digest"])
        except ARTIFACT_DECODE_ERRORS:
            return None

    def stats(self) -> StoreStats:
        """Entry and byte totals, grouped by stage."""
        stats = StoreStats()
        for meta_path in self._iter_meta_paths():
            payload = meta_path[: -len(".json")] + ".bin"
            stage = os.path.relpath(
                meta_path, os.path.join(self.root, "objects")
            ).split(os.sep)[0]
            stats.entries += 1
            try:
                size = os.path.getsize(payload)
            except OSError:
                size = 0
            stats.payload_bytes += size
            count, nbytes = stats.by_stage.get(stage, (0, 0))
            stats.by_stage[stage] = (count + 1, nbytes + size)
        return stats

    def verify(self, delete: bool = False) -> VerifyResult:
        """Re-hash every payload against its metadata."""
        result = VerifyResult()
        for meta_path in self._iter_meta_paths():
            key = self._entry_from_meta(meta_path)
            payload_path = meta_path[: -len(".json")] + ".bin"
            ok = False
            if key is not None:
                try:
                    with open(meta_path, "rb") as handle:
                        meta = json.loads(handle.read().decode("utf-8"))
                    with open(payload_path, "rb") as handle:
                        data = handle.read()
                    ok = (
                        meta.get("payload_sha256")
                        == hashlib.sha256(data).hexdigest()
                    )
                except ARTIFACT_DECODE_ERRORS:
                    ok = False
            if ok:
                result.ok += 1
            else:
                rel = os.path.relpath(meta_path, self.root)
                result.corrupt.append(rel)
                if delete:
                    for path in (meta_path, payload_path):
                        try:
                            os.remove(path)
                        except OSError:
                            pass
                    result.deleted += 1
        return result

    def gc(self, max_bytes: Optional[int] = None) -> GcResult:
        """Prune the store.

        Always removes leftover ``.tmp`` files (from interrupted
        writers).  With ``max_bytes``, evicts least-recently-modified
        entries until the payload total fits the budget.
        """
        result = GcResult()
        objects = os.path.join(self.root, "objects")
        for dirpath, _dirnames, filenames in os.walk(objects):
            for name in filenames:
                if name.endswith(".tmp"):
                    try:
                        os.remove(os.path.join(dirpath, name))
                        result.pruned_tmp += 1
                    except OSError:
                        pass
        if max_bytes is None:
            return result
        entries: List[Tuple[float, int, str, str]] = []
        total = 0
        for meta_path in self._iter_meta_paths():
            payload_path = meta_path[: -len(".json")] + ".bin"
            try:
                size = os.path.getsize(payload_path)
                mtime = os.path.getmtime(payload_path)
            except OSError:
                size, mtime = 0, 0.0
            entries.append((mtime, size, meta_path, payload_path))
            total += size
        entries.sort()
        for mtime, size, meta_path, payload_path in entries:
            if total <= max_bytes:
                break
            for path in (meta_path, payload_path):
                try:
                    os.remove(path)
                except OSError:
                    pass
            result.removed_entries += 1
            result.freed_bytes += size
            total -= size
        return result

    # -- run-stat persistence ----------------------------------------------

    def write_run_stats(self) -> Optional[str]:
        """Persist this instance's counters under ``runs/`` (atomic).

        Called once at the end of a CLI run so ``repro cache stats``
        can report hit/miss totals across invocations.  Returns the
        path written, or ``None`` when the store saw no activity.
        """
        if not any(self.counters.values()):
            return None
        path = os.path.join(
            self.root, "runs", f"{os.getpid()}-{next(self._tmp_seq)}.json"
        )
        self._atomic_write(
            path, json.dumps(self.counters, sort_keys=True).encode("utf-8")
        )
        return path


def aggregate_run_stats(root: str) -> Dict[str, int]:
    """Sum every persisted run-counter snapshot under ``root``."""
    totals = {name: 0 for name in _COUNTER_NAMES}
    totals["runs"] = 0
    runs = os.path.join(os.path.abspath(root), "runs")
    if not os.path.isdir(runs):
        return totals
    for name in sorted(os.listdir(runs)):
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(runs, name), "rb") as handle:
                counters = json.loads(handle.read().decode("utf-8"))
        except ARTIFACT_DECODE_ERRORS:
            continue
        totals["runs"] += 1
        for counter in _COUNTER_NAMES:
            totals[counter] += int(counters.get(counter, 0))
    return totals
