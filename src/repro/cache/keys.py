"""Cache-key derivation.

A :class:`CacheKey` identifies one pipeline-stage output.  Its digest
covers four things, so a change to any of them lands on a different
key (invalidation is just "the key moved"):

* the **stage name** and its **stage version** — bump the version in
  :data:`STAGE_VERSIONS` whenever a stage's implementation changes its
  output for the same config;
* the **code version** of the package (a release that touches
  everything invalidates everything);
* the canonical form of the stage's **typed config**
  (:func:`repro.cache.canonical.jsonable`);
* the digests of the **upstream artifacts** the stage consumed, which
  is what chains invalidation down the pipeline: a new capture digest
  moves every defend/features/eval key derived from it, while changing
  only classifier hyperparameters leaves the features key (and its
  cached artifact) untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence, Union

from repro._version import __version__
from repro.cache.canonical import digest

#: Code version folded into every key.
CODE_VERSION = __version__

#: Per-stage implementation versions.  Bump a stage's entry when its
#: output changes for an unchanged config — the cheap, targeted
#: invalidation lever (vs. a package version bump, which moves every
#: key).
STAGE_VERSIONS = {
    "capture": 1,   # raw trace collection (page loads over the stack)
    "dataset": 1,   # content digest of an externally supplied dataset
    "sanitize": 1,  # IQR filter + balancing
    "defend": 1,    # defense application (trace transform)
    "features": 1,  # k-FP feature extraction
    "eval": 1,      # model fit + k-fold evaluation
    "overhead": 1,  # bandwidth/latency overhead summaries
    "campaign": 1,  # sharded campaign shard payloads (repro.campaign)
}


def campaign_shard_key(config_digest: str, shard_id: int) -> CacheKey:
    """The cache key of one campaign shard's payload.

    Reuses the canonical key machinery so campaign shards live in the
    same content-addressed store as every other pipeline artifact: the
    campaign's config digest is the upstream, the shard id the config.
    Derivation-over-position means equal shards of equal campaigns —
    run, resumed, or repaired — always land on the same key.
    """
    return CacheKey.derive(
        "campaign", {"shard_id": int(shard_id)}, upstream=[config_digest]
    )


@dataclass(frozen=True)
class CacheKey:
    """One stage output's identity: ``stage`` plus a SHA-256 digest."""

    stage: str
    digest: str

    @classmethod
    def derive(
        cls,
        stage: str,
        config: Any,
        upstream: Sequence[Union["CacheKey", str]] = (),
    ) -> "CacheKey":
        """Derive the key for ``stage`` run with ``config`` over the
        ``upstream`` artifacts (keys or raw digest strings)."""
        if stage not in STAGE_VERSIONS:
            raise ValueError(
                f"unknown stage {stage!r}; declare it in STAGE_VERSIONS"
            )
        payload = {
            "stage": stage,
            "stage_version": STAGE_VERSIONS[stage],
            "code_version": CODE_VERSION,
            "config": config,
            "upstream": [
                u.digest if isinstance(u, CacheKey) else str(u)
                for u in upstream
            ],
        }
        return cls(stage=stage, digest=digest(payload))

    @property
    def relpath(self) -> str:
        """Sharded path fragment under the store root."""
        return f"{self.stage}/{self.digest[:2]}/{self.digest}"
