"""Content-addressed artifact cache with incremental recomputation.

The Table-2 workflow repeatedly re-runs the same collect → defend →
extract-features → train → evaluate pipeline while only one knob
changes.  Since every stage of that pipeline is deterministic given its
typed config (PR 2 made outputs byte-identical across worker counts),
each stage's output is a pure function of (stage config, code version,
upstream artifacts) — i.e. perfectly cacheable.

Three layers:

* :mod:`repro.cache.canonical` — the canonical JSON form that config
  digests are computed over (stable key order, JSON-safe scalars,
  type-tagged dataclasses);
* :mod:`repro.cache.keys` — :class:`CacheKey` derivation: a SHA-256
  over stage name, stage implementation version, package code version,
  canonical config and upstream-artifact digests;
* :mod:`repro.cache.store` — :class:`ArtifactStore`, the on-disk store:
  atomic rename writes (safe under multiprocess fan-out), lock-free
  reads, corruption-detecting payload digests with fallback to
  recompute, and hit/miss/bytes counters surfaced both locally and
  through the :mod:`repro.obs` registry;
* :mod:`repro.cache.pipeline` — stage key builders and
  ``cached_*`` get-or-compute helpers the experiments layer wires in.
"""

from repro.cache.canonical import canonical_json, digest, jsonable
from repro.cache.keys import CODE_VERSION, STAGE_VERSIONS, CacheKey
from repro.cache.store import ArtifactStore, StoreStats, aggregate_run_stats
from repro.cache.pipeline import (
    attack_eval_key,
    cached_array,
    cached_arrays,
    cached_dataset,
    cached_json,
    capture_key,
    dataset_key,
    defend_key,
    defense_spec,
    eval_key,
    features_key,
    overhead_key,
    sanitize_key,
)

__all__ = [
    "ArtifactStore",
    "CacheKey",
    "CODE_VERSION",
    "STAGE_VERSIONS",
    "StoreStats",
    "aggregate_run_stats",
    "attack_eval_key",
    "cached_array",
    "cached_arrays",
    "cached_dataset",
    "cached_json",
    "canonical_json",
    "capture_key",
    "dataset_key",
    "defend_key",
    "defense_spec",
    "digest",
    "eval_key",
    "features_key",
    "jsonable",
    "overhead_key",
    "sanitize_key",
]
