"""Incremental recomputation over the experiment pipeline.

The evaluation pipeline is a chain of deterministic stages::

    capture -> sanitize -> defend -> features -> eval

Each stage's key derives from its typed config plus the digest of the
upstream artifact (:class:`~repro.cache.keys.CacheKey`), so the cache
reuses exactly the prefix of the chain whose inputs did not change:
swapping the defense reuses cached raw captures; changing only the
classifier hyperparameters reuses cached features.

This module provides the stage key builders and the ``cached_*``
get-or-compute helpers.  All helpers accept ``store=None`` (or
``key=None``) and degrade to plain computation, so call sites carry no
conditional plumbing.  Artifact codecs are self-describing and safe:
datasets travel as ``.npz`` archives, arrays as ``.npy`` (both loaded
with ``allow_pickle=False``), scalars/score-lists as JSON.
"""

from __future__ import annotations

import io
import json
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.cache.keys import CacheKey
from repro.cache.store import ArtifactStore
from repro.errors import ARTIFACT_DECODE_ERRORS
from repro.capture.dataset import Dataset
from repro.capture.serialize import (
    dataset_content_digest,
    dumps_dataset,
    loads_dataset,
)

# -- stage keys ------------------------------------------------------------


def capture_key(
    pageload_config: Any,
    sites: Sequence[str],
    n_samples: int,
    seed: int,
    collector: Any = None,
) -> CacheKey:
    """Key of a raw collected dataset.

    ``collector`` captures anything beyond the page-load config that
    changes *which traces end up in the dataset* — e.g. the resilient
    runner's retry policy (retries decide which trials drop).  Worker
    counts and checkpoint paths stay out: they are wall-clock knobs
    with byte-identical output.
    """
    return CacheKey.derive(
        "capture",
        {
            "pageload": pageload_config,
            "sites": sorted(sites),
            "n_samples": n_samples,
            "seed": seed,
            "collector": collector,
        },
    )


def dataset_key(dataset: Dataset) -> CacheKey:
    """Content-address an externally supplied dataset (e.g. loaded
    from ``--dataset``), anchoring the downstream chain to its bytes."""
    return CacheKey.derive(
        "dataset", {"content_sha256": dataset_content_digest(dataset)}
    )


def sanitize_key(
    upstream: CacheKey,
    balance_to: Optional[int],
    iqr_factor: float = 1.5,
    min_packets: int = 10,
) -> CacheKey:
    return CacheKey.derive(
        "sanitize",
        {
            "balance_to": balance_to,
            "iqr_factor": iqr_factor,
            "min_packets": min_packets,
        },
        upstream=(upstream,),
    )


def defense_spec(defense: Any) -> dict:
    """The canonical identity of a configured defense: registry name
    plus its total ``params()`` dict (the Defense contract)."""
    return {"name": defense.name, "params": defense.params()}


def defend_key(
    upstream: CacheKey, defense: Any, prefix: Optional[int] = None
) -> CacheKey:
    """Key of a defended (and possibly prefix-truncated) dataset."""
    return CacheKey.derive(
        "defend",
        {"defense": defense_spec(defense), "prefix": prefix},
        upstream=(upstream,),
    )


def features_key(upstream: CacheKey, extractor: Any) -> CacheKey:
    config = {
        "extractor": getattr(extractor, "name", type(extractor).__name__),
        "extractor_version": getattr(extractor, "version", 0),
    }
    # Parameterised extractors (e.g. the TAM matrix geometry) fold their
    # params into the key; the kfp extractor has none, so its historical
    # digests are unchanged.
    params = getattr(extractor, "params", None)
    if callable(params):
        config["params"] = params()
    return CacheKey.derive("features", config, upstream=(upstream,))


def eval_key(
    upstream: CacheKey, n_folds: int, n_estimators: int, seed: int
) -> CacheKey:
    return CacheKey.derive(
        "eval",
        {"n_folds": n_folds, "n_estimators": n_estimators, "seed": seed},
        upstream=(upstream,),
    )


def attack_eval_key(
    upstream: CacheKey, attack_spec: dict, n_folds: int, seed: int
) -> CacheKey:
    """Key of a cross-validated evaluation of one configured attack.

    The attack's full spec (registry name + total ``params()``) is the
    config, so changing any attack hyperparameter — forest size, MLP
    width, TAM geometry — recomputes exactly that attack's cells while
    every other attack's fold scores stay cached.
    """
    return CacheKey.derive(
        "eval",
        {"attack": attack_spec, "n_folds": n_folds, "seed": seed},
        upstream=(upstream,),
    )


def overhead_key(upstream: CacheKey, defense: Any, max_traces: int) -> CacheKey:
    return CacheKey.derive(
        "overhead",
        {"defense": defense_spec(defense), "max_traces": max_traces},
        upstream=(upstream,),
    )


# -- get-or-compute helpers ------------------------------------------------


def cached_dataset(
    store: Optional[ArtifactStore],
    key: Optional[CacheKey],
    compute: Callable[[], Dataset],
) -> Dataset:
    """A dataset artifact: ``.npz`` payload, loaded allow_pickle=False."""
    if store is None or key is None:
        return compute()
    data = store.get_bytes(key)
    if data is not None:
        try:
            return loads_dataset(data)
        except ARTIFACT_DECODE_ERRORS:
            # Decodable-but-wrong payloads fall back like corruption.
            store._count("corruptions")
    dataset = compute()
    store.put_bytes(key, dumps_dataset(dataset), kind="dataset")
    return dataset


def cached_array(
    store: Optional[ArtifactStore],
    key: Optional[CacheKey],
    compute: Callable[[], np.ndarray],
) -> np.ndarray:
    """An ndarray artifact: ``.npy`` payload."""
    if store is None or key is None:
        return compute()
    data = store.get_bytes(key)
    if data is not None:
        try:
            return np.load(io.BytesIO(data), allow_pickle=False)
        except ARTIFACT_DECODE_ERRORS:
            store._count("corruptions")
    array = compute()
    buffer = io.BytesIO()
    np.save(buffer, np.asarray(array), allow_pickle=False)
    store.put_bytes(key, buffer.getvalue(), kind="array")
    return array


def cached_arrays(
    store: Optional[ArtifactStore],
    key: Optional[CacheKey],
    compute: Callable[[], dict],
) -> dict:
    """A named-array bundle (e.g. a feature matrix plus its labels):
    ``.npz`` payload, loaded allow_pickle=False."""
    if store is None or key is None:
        return compute()
    data = store.get_bytes(key)
    if data is not None:
        try:
            with np.load(io.BytesIO(data), allow_pickle=False) as archive:
                return {name: archive[name] for name in archive.files}
        except ARTIFACT_DECODE_ERRORS:
            store._count("corruptions")
    arrays = compute()
    buffer = io.BytesIO()
    np.savez(buffer, **{k: np.asarray(v) for k, v in arrays.items()})
    store.put_bytes(key, buffer.getvalue(), kind="arrays")
    return arrays


def cached_json(
    store: Optional[ArtifactStore],
    key: Optional[CacheKey],
    compute: Callable[[], Any],
) -> Any:
    """A JSON-safe artifact (fold scores, overhead summaries, ...)."""
    if store is None or key is None:
        return compute()
    data = store.get_bytes(key)
    if data is not None:
        try:
            return json.loads(data.decode("utf-8"))
        except ARTIFACT_DECODE_ERRORS:
            store._count("corruptions")
    value = compute()
    store.put_bytes(
        key,
        json.dumps(value, sort_keys=True, separators=(",", ":")).encode("utf-8"),
        kind="json",
    )
    return value
