"""Canonical JSON: the form cache digests are computed over.

Two runs must derive the same digest for the same *logical* config, so
the canonical form has to be independent of dict insertion order,
tuple-vs-list spelling and numpy-vs-python scalar types.  It also has
to be *total* over the config space: anything that cannot be
represented faithfully (NaN, arbitrary objects) raises instead of
silently digesting something ambiguous.

Rules:

* dicts serialise with sorted string keys;
* tuples, lists and 1-D arrays all become JSON arrays;
* numpy scalars collapse to the equivalent python scalar;
* non-finite floats are rejected (``NaN != NaN`` would make a digest
  meaningless);
* an object exposing ``to_dict()`` is asked for its canonical dict —
  this is how the typed experiment configs plug in;
* any other dataclass becomes a type-tagged dict
  (``{"__dataclass__": "GilbertElliottSpec", ...fields}``) so two spec
  types with identical field names never collide.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Any

import numpy as np


def jsonable(obj: Any) -> Any:
    """Convert ``obj`` to plain JSON-safe data under the canonical rules."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if not math.isfinite(obj):
            raise ValueError(f"non-finite float {obj!r} cannot be canonicalised")
        return obj
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return jsonable(float(obj))
    if isinstance(obj, np.ndarray):
        return [jsonable(x) for x in obj.tolist()]
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict) and not isinstance(obj, type):
        return jsonable(to_dict())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__dataclass__": type(obj).__name__}
        for field in dataclasses.fields(obj):
            out[field.name] = jsonable(getattr(obj, field.name))
        return out
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"canonical dicts need string keys, got {key!r}"
                )
            out[key] = jsonable(value)
        return out
    if isinstance(obj, (list, tuple)):
        return [jsonable(x) for x in obj]
    raise TypeError(
        f"{type(obj).__name__} is not canonicalisable; give it a "
        f"to_dict() or pass plain data"
    )


def canonical_json(obj: Any) -> str:
    """The one canonical serialisation: sorted keys, no whitespace."""
    return json.dumps(
        jsonable(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def digest(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
