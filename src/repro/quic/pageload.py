"""Page loads over QUIC.

Reuses the HTTP exchange driver of :mod:`repro.web.pageload` — both
transport endpoints expose the same ``write``/``on_data``/
``on_established`` surface — so the only difference between a TCP and
a QUIC visit of the same page is the transport, which is exactly what
the TCP-vs-QUIC fingerprinting comparison needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.capture.dataset import Dataset
from repro.capture.trace import Trace, TraceObserver
from repro.quic.endpoint import QuicConfig, make_quic_flow
from repro.simnet.engine import Simulator
from repro.stob.controller import StobController
from repro.web.objects import SiteProfile
from repro.web.pageload import PageLoadConfig, _PageLoadSession
from repro.web.sites import SITE_CATALOG


@dataclass
class _QuicFlowAdapter:
    """Shape-compatible stand-in for :class:`repro.stack.host.TcpFlow`."""

    client: object
    server: object

    def connect(self) -> None:
        self.client.connect()


def load_page_quic(
    profile: SiteProfile,
    config: Optional[PageLoadConfig] = None,
    rng: Optional[np.random.Generator] = None,
    server_controller: Optional[StobController] = None,
) -> Trace:
    """Simulate one QUIC visit and return the observed trace."""
    config = config or PageLoadConfig()
    rng = rng or np.random.default_rng(0)
    sim = Simulator()
    path = config.sample_path(rng)
    observer = TraceObserver()
    client, server, _fwd, _rev = make_quic_flow(
        sim,
        path,
        QuicConfig(cc=config.cc),
        QuicConfig(cc=config.cc),
        rng=np.random.default_rng(int(rng.integers(0, 2**63))),
        client_tap=observer.tap_outgoing,
        server_tap=observer.tap_incoming,
    )
    if server_controller is not None:
        server.segment_controller = server_controller

    page = profile.sample_page(rng)
    done = {"flag": False}

    def finish() -> None:
        done["flag"] = True

    flow = _QuicFlowAdapter(client=client, server=server)
    _PageLoadSession(sim, flow, page, config.pipeline_depth, finish)
    step = 0.1
    while not done["flag"] and sim.now < config.max_duration:
        sim.run(until=min(sim.now + step, config.max_duration))
    if done["flag"]:
        sim.run(until=sim.now + 4 * path.rtt)
    return observer.trace()


def collect_quic_dataset(
    n_samples: int = 100,
    sites: Optional[List[str]] = None,
    config: Optional[PageLoadConfig] = None,
    seed: int = 0,
    controller_factory: Optional[Callable[[], StobController]] = None,
) -> Dataset:
    """A closed-world dataset of QUIC page loads."""
    config = config or PageLoadConfig()
    dataset = Dataset()
    labels = sites or sorted(SITE_CATALOG)
    root = np.random.default_rng(seed)
    for label in labels:
        profile = SITE_CATALOG[label]
        for _ in range(n_samples):
            rng = np.random.default_rng(root.integers(0, 2**63))
            controller = (
                controller_factory() if controller_factory is not None else None
            )
            dataset.add(
                label,
                load_page_quic(profile, config, rng,
                               server_controller=controller),
            )
    return dataset
