"""QUIC-lite: a userspace transport over UDP.

§2.3: "This observation is based on TCP, but the same will apply to
QUIC.  Although it runs on top of UDP, since QUIC also provides stream
abstractions, packet size is determined by QUIC based on its PMTU
discovery.  Datagram transmission to the UDP layer is also scheduled
by QUIC based on its congestion control, rather than the application."

This package models exactly that: a QUIC endpoint with

* stream data packetised into PMTU-sized datagrams (QUIC decides, not
  the application),
* packet-number-based loss detection (time + packet thresholds, no
  retransmission of packets — lost data is re-packetised),
* the same pluggable congestion controllers as TCP (Reno/CUBIC/BBR),
* internal pacing (QUIC paces in userspace),
* native PADDING support (cover traffic without a TLS-record hack),
* the same Stob controller hooks as the TCP endpoint — making the
  paper's point that the obfuscation layer can be transport-agnostic.
"""

from repro.quic.packet import QuicPacket
from repro.quic.endpoint import QuicConfig, QuicEndpoint, make_quic_flow

__all__ = ["QuicPacket", "QuicConfig", "QuicEndpoint", "make_quic_flow"]
