"""QUIC packet representation.

A QUIC packet is one UDP datagram here (no coalescing).  Contents are
modelled as byte counts per frame type — stream data, ACK frames and
PADDING — because WF sees only datagram sizes and times.  Packets are
identified by monotonically increasing packet numbers and are never
retransmitted; lost *data* is re-packetised into new packets (a core
difference from TCP that loss detection relies on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.units import IPV4_HEADER, UDP_HEADER

#: Short-header QUIC packet overhead: flags+dcid+pn (~14) + AEAD tag 16.
QUIC_OVERHEAD = 30
#: Bytes on the wire that are not QUIC payload.
DATAGRAM_OVERHEAD = IPV4_HEADER + UDP_HEADER + QUIC_OVERHEAD
#: Default max datagram size (QUIC's conservative initial PMTU).
DEFAULT_DATAGRAM_SIZE = 1350


@dataclass
class QuicPacket:
    """One QUIC packet / UDP datagram.

    ``stream_ranges`` lists the stream byte ranges carried (offset
    pairs), so receivers can reassemble and loss recovery knows what to
    re-packetise.
    """

    flow_id: int
    direction: int
    packet_number: int
    stream_ranges: List[Tuple[int, int]] = field(default_factory=list)
    ack_largest: int = -1
    ack_ranges: tuple = ()
    padding_bytes: int = 0
    is_handshake: bool = False
    sent_at: float = -1.0

    def __post_init__(self) -> None:
        if self.direction not in (1, -1):
            raise ValueError(f"direction must be +1 or -1, got {self.direction}")
        if self.padding_bytes < 0:
            raise ValueError(
                f"padding_bytes must be >= 0, got {self.padding_bytes}"
            )
        for start, end in self.stream_ranges:
            if end <= start:
                raise ValueError(f"bad stream range ({start}, {end})")

    @property
    def stream_bytes(self) -> int:
        """Stream payload bytes carried."""
        return sum(end - start for start, end in self.stream_ranges)

    @property
    def is_ack_eliciting(self) -> bool:
        """Packets carrying anything but ACK frames elicit ACKs."""
        return bool(self.stream_ranges) or self.padding_bytes > 0 or self.is_handshake

    @property
    def wire_size(self) -> int:
        """Bytes on the wire (IP + UDP + QUIC overheads + frames)."""
        ack_size = 8 + 4 * len(self.ack_ranges) if self.ack_largest >= 0 else 0
        return (
            DATAGRAM_OVERHEAD
            + self.stream_bytes
            + self.padding_bytes
            + ack_size
        )
