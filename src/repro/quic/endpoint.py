"""QUIC-lite endpoint.

The endpoint owns one bidirectional stream (stream 0), reusing the
stack's send/receive buffers and congestion controllers.  It differs
from the TCP endpoint exactly where QUIC differs from TCP:

* data is carried in numbered packets that are never retransmitted —
  lost stream ranges are *re-packetised* into fresh packets;
* loss detection is packet-number based (packet threshold 3) plus a
  time threshold (9/8 of the latest RTT), per RFC 9002;
* acknowledgements carry packet-number ranges;
* pacing happens inside the endpoint (userspace), not in a qdisc;
* PADDING frames provide native cover traffic.

Stob hooks: the same ``segment_controller`` interface as
:class:`repro.stack.tcp.TcpEndpoint` — ``packet_sizes`` shapes datagram
payloads, ``departure_gap`` stretches the sequence; ``tso_size`` is
ignored (no TSO on this path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.simnet.engine import Event, Simulator
from repro.stack.buffers import ReceiveBuffer, SendBuffer
from repro.stack.cc import make_cca
from repro.stack.cc.base import AckSample
from repro.stack.intervals import RangeSet
from repro.stack.pacing import FlowPacer
from repro.quic.packet import (
    DATAGRAM_OVERHEAD,
    DEFAULT_DATAGRAM_SIZE,
    QuicPacket,
)

#: RFC 9002 constants.
PACKET_THRESHOLD = 3
TIME_THRESHOLD = 9.0 / 8.0
GRANULARITY = 0.001


@dataclass
class QuicConfig:
    """Endpoint tunables."""

    datagram_size: int = DEFAULT_DATAGRAM_SIZE
    cc: str = "cubic"
    pacing: bool = True
    ack_every: int = 2
    max_ack_delay: float = 0.025
    initial_rtt: float = 0.1

    def __post_init__(self) -> None:
        if self.datagram_size <= DATAGRAM_OVERHEAD:
            raise ValueError(
                f"datagram_size must exceed overhead {DATAGRAM_OVERHEAD}, "
                f"got {self.datagram_size}"
            )
        if self.ack_every < 1:
            raise ValueError(f"ack_every must be >= 1, got {self.ack_every}")

    @property
    def max_payload(self) -> int:
        """Stream bytes per full datagram."""
        return self.datagram_size - DATAGRAM_OVERHEAD


class QuicEndpoint:
    """One side of a QUIC connection."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        direction: int,
        send_datagram: Callable[[QuicPacket], None],
        config: Optional[QuicConfig] = None,
    ) -> None:
        self._sim = sim
        self.flow_id = flow_id
        self.direction = direction
        self._send_datagram = send_datagram
        self.config = config or QuicConfig()

        self.send_buffer = SendBuffer()
        self.receive_buffer = ReceiveBuffer()
        self.cca = make_cca(self.config.cc, self.config.max_payload)
        self.pacer = FlowPacer()
        self.segment_controller = None

        self.established = False
        self.on_established: Optional[Callable[[], None]] = None

        # Sender state.
        self._next_pn = 0
        self._sent: Dict[int, QuicPacket] = {}
        self.bytes_in_flight = 0
        self._largest_acked = -1
        self._lost_ranges = RangeSet()
        self._delivered_ranges = RangeSet()
        self._srtt = -1.0
        self._rttvar = 0.0
        self._latest_rtt = -1.0
        self._pto_timer: Optional[Event] = None
        self._pto_count = 0
        self.packets_sent = 0
        self.lost_packets = 0
        self.delivered = 0
        self._loss_epoch_pn = -1
        #: Actual transmission time per packet number (RTT sampling).
        self._stamp_cache: Dict[int, float] = {}

        # Receiver state.
        self._received_pns = RangeSet()
        self._largest_received = -1
        self._ack_pending = 0
        self._ack_timer: Optional[Event] = None
        self.padding_received = 0

    # ------------------------------------------------------------------ app API

    @property
    def srtt(self) -> float:
        return self._srtt

    def connect(self) -> None:
        """Client handshake: one padded Initial packet."""
        if self.established:
            return
        packet = QuicPacket(
            flow_id=self.flow_id,
            direction=self.direction,
            packet_number=self._allocate_pn(),
            padding_bytes=1200 - DATAGRAM_OVERHEAD,
            is_handshake=True,
        )
        self._transmit(packet)
        self._arm_pto()

    def write(self, nbytes: int) -> int:
        """Post stream data (transmitted asynchronously)."""
        taken = self.send_buffer.write(nbytes)
        self.try_send()
        return taken

    def on_data(self, callback: Callable[[int], None]) -> None:
        self.receive_buffer.on_data(callback)

    def inject_padding(self, nbytes: int) -> None:
        """Send a PADDING-only packet (native QUIC cover traffic)."""
        if nbytes <= 0:
            return
        packet = QuicPacket(
            flow_id=self.flow_id,
            direction=self.direction,
            packet_number=self._allocate_pn(),
            padding_bytes=min(nbytes, self.config.max_payload),
        )
        self._transmit(packet, count_in_flight=False)

    # ------------------------------------------------------------------ sending

    def _allocate_pn(self) -> int:
        pn = self._next_pn
        self._next_pn += 1
        return pn

    def _pacing_rate(self) -> Optional[float]:
        if not self.config.pacing:
            return None
        return self.cca.pacing_rate(self._srtt)

    def try_send(self) -> None:
        """Packetise lost ranges first, then new data, window-limited."""
        if not self.established:
            return
        # Reserve room for the piggybacked ACK frame (<= 20 bytes) so
        # a full data packet never exceeds the datagram size.
        budget = self.config.max_payload - 20
        while self.bytes_in_flight < self.cca.cwnd:
            ranges = self._take_ranges(budget)
            if not ranges:
                break
            self._send_stream_packet(ranges)

    def _take_ranges(self, budget: int) -> List[Tuple[int, int]]:
        """Stream ranges for one packet: retransmittable data first."""
        ranges: List[Tuple[int, int]] = []
        while budget > 0 and self._lost_ranges:
            start, end = self._lost_ranges.ranges[0]
            take = min(end - start, budget)
            self._lost_ranges.remove(start, start + take)
            ranges.append((start, start + take))
            budget -= take
        if budget > 0:
            fresh = self.send_buffer.take(budget)
            if fresh:
                start = self.send_buffer.nxt - fresh
                ranges.append((start, start + fresh))
        return ranges

    def _send_stream_packet(self, ranges: List[Tuple[int, int]]) -> None:
        controller = self.segment_controller
        total = sum(end - start for start, end in ranges)
        if controller is not None:
            sizes = controller.packet_sizes(self, total, self.config.max_payload)
        else:
            sizes = None
        if not sizes:
            sizes = [total]
        # Split the taken ranges across the dictated packet sizes.
        queue = list(ranges)
        for size in sizes:
            packet_ranges: List[Tuple[int, int]] = []
            need = size
            while need > 0 and queue:
                start, end = queue.pop(0)
                take = min(end - start, need)
                packet_ranges.append((start, start + take))
                if start + take < end:
                    queue.insert(0, (start + take, end))
                need -= take
            if packet_ranges:
                self._emit(packet_ranges)
        for leftover in queue:  # controller under-packetised: recycle
            self._lost_ranges.add(*leftover)

    def _emit(self, packet_ranges: List[Tuple[int, int]]) -> None:
        packet = QuicPacket(
            flow_id=self.flow_id,
            direction=self.direction,
            packet_number=self._allocate_pn(),
            stream_ranges=packet_ranges,
            ack_largest=self._largest_received,
            ack_ranges=tuple(self._received_pns.ranges[-3:]),
        )
        self._transmit(packet)

    def _transmit(self, packet: QuicPacket, count_in_flight: bool = True) -> None:
        extra_gap = 0.0
        controller = self.segment_controller
        if controller is not None:
            extra_gap = max(0.0, controller.departure_gap(self, packet))
        departure = self.pacer.schedule(
            self._sim.now, packet.wire_size, self._pacing_rate(), extra_gap
        )
        self.packets_sent += 1
        if count_in_flight and packet.is_ack_eliciting:
            self._sent[packet.packet_number] = packet
            self.bytes_in_flight += packet.wire_size
        delay = max(0.0, departure - self._sim.now)
        self._sim.schedule(delay, self._make_sender(packet))
        if packet.is_ack_eliciting:
            self._arm_pto()

    def _make_sender(self, packet: QuicPacket) -> Callable[[], None]:
        def fire() -> None:
            packet.sent_at = self._sim.now
            if packet.is_ack_eliciting:
                self._stamp_cache[packet.packet_number] = self._sim.now
            self._send_datagram(packet)

        return fire

    # ------------------------------------------------------------------ receiving

    def on_packet(self, packet: QuicPacket) -> None:
        """Entry point for arriving datagrams."""
        if packet.is_handshake and not self.established:
            self.established = True
            if self.direction == -1:
                # Server replies with its own handshake packet.
                reply = QuicPacket(
                    flow_id=self.flow_id,
                    direction=self.direction,
                    packet_number=self._allocate_pn(),
                    padding_bytes=1200 - DATAGRAM_OVERHEAD,
                    is_handshake=True,
                )
                self._transmit(reply)
            else:
                self._cancel_pto()
            if self.on_established is not None:
                self.on_established()
            self.try_send()
        self._largest_received = max(
            self._largest_received, packet.packet_number
        )
        self._received_pns.add(packet.packet_number, packet.packet_number + 1)
        self.padding_received += packet.padding_bytes
        for start, end in packet.stream_ranges:
            self.receive_buffer.receive(start, end - start)
        if packet.ack_largest >= 0:
            self._handle_ack(packet)
        if packet.is_ack_eliciting:
            self._ack_pending += 1
            out_of_order = len(self._received_pns) > 1
            if self._ack_pending >= self.config.ack_every or out_of_order:
                self._send_ack()
            elif self._ack_timer is None or self._ack_timer.cancelled:
                self._ack_timer = self._sim.schedule(
                    self.config.max_ack_delay, self._ack_timer_fire
                )

    def _ack_timer_fire(self) -> None:
        self._ack_timer = None
        if self._ack_pending:
            self._send_ack()

    def _send_ack(self) -> None:
        self._ack_pending = 0
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        packet = QuicPacket(
            flow_id=self.flow_id,
            direction=self.direction,
            packet_number=self._allocate_pn(),
            ack_largest=self._largest_received,
            ack_ranges=tuple(self._received_pns.ranges[-3:]),
        )
        self._transmit(packet, count_in_flight=False)

    # ------------------------------------------------------------------ ACK clock

    def _handle_ack(self, packet: QuicPacket) -> None:
        acked_pns = [
            pn
            for start, end in packet.ack_ranges
            for pn in range(start, min(end, packet.ack_largest + 1))
            if pn in self._sent
        ]
        if packet.ack_largest in self._sent:
            acked_pns.append(packet.ack_largest)
        if not acked_pns:
            return
        acked_pns = sorted(set(acked_pns))
        newly_acked_bytes = 0
        largest = max(acked_pns)
        for pn in acked_pns:
            sent = self._sent.pop(pn)
            self.bytes_in_flight -= sent.wire_size
            newly_acked_bytes += sent.wire_size
            for start, end in sent.stream_ranges:
                self._delivered_ranges.add(start, end)
                self._lost_ranges.remove(start, end)
        self._largest_acked = max(self._largest_acked, largest)
        self._advance_delivery()
        self._pto_count = 0

        # RTT sample from the largest newly acked packet.
        stamp = self._stamp_cache.pop(largest, None)
        for pn in acked_pns:
            self._stamp_cache.pop(pn, None)
        if stamp is not None:
            self._latest_rtt = self._sim.now - stamp
            self._rtt_sample(self._latest_rtt)

        sample = AckSample(
            acked_bytes=newly_acked_bytes,
            rtt=self._latest_rtt,
            now=self._sim.now,
            in_flight=self.bytes_in_flight,
            delivery_rate=0.0,
        )
        self.cca.on_ack(sample)
        self._detect_losses()
        if self._sent:
            self._arm_pto(restart=True)
        else:
            self._cancel_pto()
        self.try_send()

    def _rtt_sample(self, rtt: float) -> None:
        if rtt <= 0:
            return
        if self._srtt < 0:
            self._srtt = rtt
            self._rttvar = rtt / 2.0
        else:
            err = rtt - self._srtt
            self._srtt += 0.125 * err
            self._rttvar += 0.25 * (abs(err) - self._rttvar)

    def _advance_delivery(self) -> None:
        """Cumulative delivered-byte accounting (for completion checks)."""
        ranges = self._delivered_ranges.ranges
        if ranges and ranges[0][0] <= self.delivered:
            self.delivered = max(self.delivered, ranges[0][1])

    # ------------------------------------------------------------------ loss

    def _detect_losses(self) -> None:
        """RFC 9002: packet + time thresholds below the largest acked."""
        threshold_pn = self._largest_acked - PACKET_THRESHOLD
        rtt = max(self._latest_rtt, self._srtt, GRANULARITY)
        threshold_time = self._sim.now - TIME_THRESHOLD * rtt
        lost: List[int] = []
        for pn, packet in self._sent.items():
            if pn >= self._largest_acked:
                continue
            if pn <= threshold_pn or (
                0 <= packet.sent_at <= threshold_time
            ):
                lost.append(pn)
        if not lost:
            return
        for pn in lost:
            packet = self._sent.pop(pn)
            self.bytes_in_flight -= packet.wire_size
            self.lost_packets += 1
            for start, end in packet.stream_ranges:
                # Re-packetise anything not already delivered.
                self._lost_ranges.add(start, end)
                for d_start, d_end in self._delivered_ranges.ranges:
                    self._lost_ranges.remove(d_start, d_end)
        # One congestion event per loss epoch (burst of losses).
        if max(lost) > self._loss_epoch_pn:
            self._loss_epoch_pn = self._next_pn
            self.cca.on_loss(self._sim.now, self.bytes_in_flight)
            exit_check = getattr(self.cca, "on_recovery_exit", None)
            if exit_check is not None:
                # QUIC has no explicit recovery-exit ACK; leave recovery
                # one RTT later.
                self._sim.schedule(
                    rtt, lambda: self.cca.on_recovery_exit(self._sim.now)
                )

    # ------------------------------------------------------------------ PTO

    def _pto_interval(self) -> float:
        if self._srtt < 0:
            base = self.config.initial_rtt * 2
        else:
            base = self._srtt + max(4 * self._rttvar, GRANULARITY)
            base += self.config.max_ack_delay
        return base * (2 ** min(self._pto_count, 6))

    def _arm_pto(self, restart: bool = False) -> None:
        if self._pto_timer is not None and not self._pto_timer.cancelled:
            if not restart:
                return
            self._pto_timer.cancel()
        self._pto_timer = self._sim.schedule(self._pto_interval(), self._pto_fire)

    def _cancel_pto(self) -> None:
        if self._pto_timer is not None:
            self._pto_timer.cancel()
            self._pto_timer = None

    def _pto_fire(self) -> None:
        self._pto_timer = None
        self._pto_count += 1
        if not self.established:
            self.connect()  # retry handshake
            return
        # Probe: re-packetise the oldest unacked ranges.
        if self._sent:
            oldest = min(self._sent)
            packet = self._sent.pop(oldest)
            self.bytes_in_flight -= packet.wire_size
            self.lost_packets += 1
            for start, end in packet.stream_ranges:
                self._lost_ranges.add(start, end)
                for d_start, d_end in self._delivered_ranges.ranges:
                    self._lost_ranges.remove(d_start, d_end)
            self.cca.on_rto(self._sim.now)
            self.try_send()
        if self._sent or self._lost_ranges:
            self._arm_pto(restart=True)


def make_quic_flow(
    sim: Simulator,
    path,
    client_config: Optional[QuicConfig] = None,
    server_config: Optional[QuicConfig] = None,
    rng=None,
    client_tap: Optional[Callable[[QuicPacket, float], None]] = None,
    server_tap: Optional[Callable[[QuicPacket, float], None]] = None,
):
    """Client/server QUIC endpoints over a NetworkPath (UDP has no
    qdisc here: QUIC paces in userspace).

    ``client_tap``/``server_tap`` observe datagrams each side sends
    (the WF vantage points, matching the TCP NIC taps).
    """
    from repro.stack.host import next_flow_id

    flow_id = next_flow_id()
    holder = {}

    def to_server(packet: QuicPacket) -> None:
        if client_tap is not None:
            client_tap(packet, sim.now)
        holder["forward"].send(packet)

    def to_client(packet: QuicPacket) -> None:
        if server_tap is not None:
            server_tap(packet, sim.now)
        holder["reverse"].send(packet)

    client = QuicEndpoint(sim, flow_id, 1, to_server, client_config)
    server = QuicEndpoint(sim, flow_id, -1, to_client, server_config)
    forward, reverse = path.build_links(
        sim,
        forward_receiver=server.on_packet,
        reverse_receiver=client.on_packet,
        rng=rng,
    )
    holder["forward"] = forward
    holder["reverse"] = reverse
    return client, server, forward, reverse
