"""Crash-tolerant supervised worker pool.

:mod:`repro.parallel` fans chunks of trials out over a
``ProcessPoolExecutor``; this module is the reliability layer wrapped
around that fan-out.  A plain executor dies with its workers: one
segfaulting, OOM-killed or ``os._exit``-ing child marks the whole pool
broken and every in-flight future raises ``BrokenProcessPool`` — which
previously lost the entire collection campaign.  The
:class:`SupervisedPool` instead:

* **recovers from worker death** — the broken pool is torn down and
  rebuilt, completed chunks are kept, and the lost chunks are
  rescheduled.  Because every trial's randomness is position-derived
  (:func:`repro.experiments.runner.trial_seed_rng`), a rescheduled
  chunk recomputes byte-identical results, so recovery never changes
  the dataset;
* **quarantines poison trials** — a chunk that keeps killing workers
  is bisected: split in half and rescheduled until the offending
  single trial is cornered, confirmed by running it in *isolation*
  (alone in the pool, so the kill is unambiguous), and then excluded
  with a loud log line instead of sinking the run;
* **degrades gracefully** — when pool rebuilds exhaust the
  ``max_worker_restarts`` budget the circuit breaker trips and the
  remaining chunks execute serially in-process (an obs gauge flips and
  an error-level log line says so), trading wall-clock for forward
  progress instead of aborting;
* **hard-kills hung workers** — with a ``trial_deadline`` configured,
  a chunk that exceeds its soft deadline is warned about (obs counter
  + log), and one that exceeds the hard deadline gets its workers
  terminated, which surfaces as a worker death and re-enters the
  recovery path above.  A deterministic hang therefore converges to
  quarantine through the same bisection machinery as a crash.

Metrics (when a :mod:`repro.obs` session is active):
``supervisor.worker_restarts``, ``supervisor.chunks_rescheduled``,
``supervisor.quarantined_trials``, ``supervisor.deadline_warnings``,
``supervisor.hard_kills``, ``supervisor.serial_chunks`` and the gauge
``supervisor.breaker_state`` (0 closed / 1 open).

Chaos injection
---------------

For end-to-end chaos testing through the real CLI, the environment
variable ``REPRO_CHAOS`` arms a fault in the *worker* processes (the
coordinating process never faults):

* ``REPRO_CHAOS=crash-once:/path/sentinel`` — the first worker task to
  run creates the sentinel file and ``os._exit``\\ s, killing its
  worker; every later task sees the sentinel and runs normally.
* ``REPRO_CHAOS=hang-once:/path/sentinel:SECONDS`` — same, but the
  first task sleeps instead of exiting (exercises the deadline path).

``benchmarks/smoke_supervise.py`` and the ``chaos-smoke`` CI job drive
a real collection through a crash this way and assert byte-identity
with an uncrashed run.
"""

from __future__ import annotations

import logging
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

from repro.errors import WorkerCrashError
from repro.obs import runtime as _obs_runtime

log = logging.getLogger("repro.supervise")

#: Environment variable arming worker-side chaos faults (see module
#: docstring).  Read in the worker, so it propagates through pool spawn.
CHAOS_ENV = "REPRO_CHAOS"


@dataclass(frozen=True)
class SupervisorConfig:
    """Failure-handling knobs for a :class:`SupervisedPool`.

    Frozen: derive variants with :func:`dataclasses.replace`.  None of
    these knobs can change *what* is computed — recovery replays
    position-seeded work — so they never enter cache keys.
    """

    #: Pool rebuilds tolerated before the circuit breaker trips and the
    #: remaining work degrades to serial in-process execution.
    max_worker_restarts: int = 5
    #: Worker deaths a chunk may be involved in before it is treated as
    #: a suspect (bisected, or isolated when already a single trial).
    max_chunk_crashes: int = 2
    #: Exclude a confirmed poison trial and continue (True), or raise
    #: :class:`~repro.errors.WorkerCrashError` and fail the run (False).
    quarantine: bool = True
    #: Expected wall-clock seconds for ONE trial; enables hang
    #: detection when set.  Chunk deadlines scale with chunk length.
    trial_deadline: Optional[float] = None
    #: Chunk age (in units of ``trial_deadline`` x chunk length) that
    #: triggers a warning, and the age that triggers a worker kill.
    soft_deadline_factor: float = 2.0
    hard_deadline_factor: float = 4.0
    #: Seconds between liveness/deadline checks of in-flight chunks.
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.max_worker_restarts < 0:
            raise ValueError(
                f"max_worker_restarts must be >= 0, got {self.max_worker_restarts}"
            )
        if self.max_chunk_crashes < 1:
            raise ValueError(
                f"max_chunk_crashes must be >= 1, got {self.max_chunk_crashes}"
            )
        if self.trial_deadline is not None and self.trial_deadline <= 0:
            raise ValueError(
                f"trial_deadline must be > 0, got {self.trial_deadline}"
            )
        if not 0 < self.soft_deadline_factor <= self.hard_deadline_factor:
            raise ValueError(
                "need 0 < soft_deadline_factor <= hard_deadline_factor, got "
                f"({self.soft_deadline_factor}, {self.hard_deadline_factor})"
            )
        if self.poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be > 0, got {self.poll_interval}"
            )

    def to_dict(self) -> dict:
        from repro.experiments.config import config_to_dict

        return config_to_dict(self)


@dataclass
class QuarantinedTrial:
    """One work item excluded after repeatedly killing workers."""

    item: Any
    crashes: int


@dataclass
class SupervisorReport:
    """What one supervised run survived."""

    worker_restarts: int = 0
    chunks_rescheduled: int = 0
    quarantined: List[QuarantinedTrial] = field(default_factory=list)
    breaker_tripped: bool = False
    soft_deadline_warnings: int = 0
    hard_kills: int = 0
    #: Chunks executed in-process after the breaker opened.
    serial_chunks: int = 0


@dataclass
class _Chunk:
    """Supervision state for one unit of pool work."""

    items: List[Any]
    crashes: int = 0
    #: Running alone in the pool (poison confirmation mode).
    isolated: bool = False
    soft_warned: bool = False
    hard_killed: bool = False

    def reset_flight_state(self) -> None:
        self.isolated = False
        self.soft_warned = False
        self.hard_killed = False


@dataclass(frozen=True)
class _ChaosTask:
    """Picklable wrapper arming :data:`CHAOS_ENV` faults in workers."""

    fn: Callable[..., Any]

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        chaos_maybe_fault()
        return self.fn(*args, **kwargs)


def chaos_maybe_fault() -> None:
    """Trigger the armed :data:`CHAOS_ENV` fault, at most once.

    No-op in the coordinating process: chaos faults simulate *worker*
    infrastructure failure, and killing the coordinator would just be
    killing the test.
    """
    spec = os.environ.get(CHAOS_ENV)
    if not spec:
        return
    import multiprocessing

    if multiprocessing.parent_process() is None:
        return
    mode, _, arg = spec.partition(":")
    if mode == "crash-once":
        if _claim_sentinel(arg):
            os._exit(32)
    elif mode == "hang-once":
        path, _, seconds = arg.partition(":")
        if _claim_sentinel(path):
            time.sleep(float(seconds or 3600.0))
    else:
        raise ValueError(f"unknown {CHAOS_ENV} spec: {spec!r}")


def _claim_sentinel(path: str) -> bool:
    """Atomically create ``path``; True for exactly one claimant."""
    if not path:
        raise ValueError(f"{CHAOS_ENV} spec needs a sentinel path")
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


class SupervisedPool:
    """Runs chunked tasks on a process pool that survives its workers.

    ``task`` is a picklable callable ``task(items) -> payload``; each
    ``payload`` is handed to ``complete`` exactly once, in completion
    order.  Callers must therefore merge results by *content* (trial
    coordinates), never by arrival order — the same contract the
    unsupervised fan-out already had.

    The pool itself is rebuilt on demand after worker death; chunks are
    the unit of rescheduling and bisection.  See the module docstring
    for the full failure model.
    """

    def __init__(
        self,
        workers: int,
        task: Callable[[List[Any]], Any],
        complete: Callable[[Any], None],
        config: Optional[SupervisorConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._workers = workers
        self._task: Callable[..., Any] = (
            _ChaosTask(task) if os.environ.get(CHAOS_ENV) else task
        )
        self._complete = complete
        self._config = config or SupervisorConfig()
        self._clock = clock

    # -- obs plumbing ------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        obs = _obs_runtime.session()
        if obs is not None:
            obs.registry.counter(f"supervisor.{name}").add(amount)

    def _set_breaker_gauge(self, state: int) -> None:
        obs = _obs_runtime.session()
        if obs is not None:
            obs.registry.gauge("supervisor.breaker_state").set(state)

    def _emit(self, kind: str, **fields: object) -> None:
        obs = _obs_runtime.session()
        if obs is not None:
            obs.emit(kind, "supervisor", **fields)

    # -- execution ---------------------------------------------------------

    def run(self, chunks: Sequence[Sequence[Any]]) -> SupervisorReport:
        """Execute every chunk, surviving worker death; see class doc."""
        report = SupervisorReport()
        self._set_breaker_gauge(0)
        pending: Deque[_Chunk] = deque(
            _Chunk(items=list(chunk)) for chunk in chunks if chunk
        )
        probation: Deque[_Chunk] = deque()
        in_flight: Dict[Any, _Chunk] = {}
        submitted_at: Dict[Any, float] = {}
        pool: Optional[ProcessPoolExecutor] = None
        try:
            while pending or probation or in_flight:
                if report.worker_restarts > self._config.max_worker_restarts:
                    self._trip_breaker(report)
                    self._drain_serial(pending, probation, report)
                    return report
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=self._workers)
                try:
                    while pending:
                        self._submit(pool, pending[0], in_flight, submitted_at)
                        pending.popleft()
                    if not in_flight and probation:
                        chunk = probation[0]
                        self._submit(pool, chunk, in_flight, submitted_at)
                        probation.popleft()
                        chunk.isolated = True
                except BrokenExecutor:
                    # Submission hit an already-broken pool: the chunk
                    # being submitted stays queued (no crash attributed
                    # to it); recover whatever was in flight.
                    pool = self._handle_crash(
                        pool, in_flight, submitted_at, pending, probation,
                        report,
                    )
                    continue
                if not in_flight:
                    continue
                done, _ = wait(
                    set(in_flight),
                    timeout=self._config.poll_interval,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    error = future.exception()
                    if error is None:
                        in_flight.pop(future)
                        submitted_at.pop(future, None)
                        self._complete(future.result())
                    elif isinstance(error, BrokenExecutor):
                        broken = True
                    else:
                        # A real exception from the task itself (fatal
                        # trial error, unpicklable payload, ...):
                        # supervision cannot help — propagate.
                        raise error
                if broken:
                    pool = self._handle_crash(
                        pool, in_flight, submitted_at, pending, probation,
                        report,
                    )
                elif in_flight:
                    self._check_deadlines(pool, in_flight, submitted_at, report)
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        return report

    def _submit(
        self,
        pool: ProcessPoolExecutor,
        chunk: _Chunk,
        in_flight: Dict[Any, _Chunk],
        submitted_at: Dict[Any, float],
    ) -> None:
        future = pool.submit(self._task, chunk.items)
        in_flight[future] = chunk
        submitted_at[future] = self._clock()

    # -- worker-death recovery ---------------------------------------------

    def _handle_crash(
        self,
        pool: ProcessPoolExecutor,
        in_flight: Dict[Any, _Chunk],
        submitted_at: Dict[Any, float],
        pending: Deque[_Chunk],
        probation: Deque[_Chunk],
        report: SupervisorReport,
    ) -> None:
        """Tear down a broken pool, keep finished work, requeue the rest.

        Returns ``None`` so the caller's ``pool`` is rebuilt lazily on
        the next loop iteration.
        """
        report.worker_restarts += 1
        self._count("worker_restarts")
        self._emit("supervisor.restart", restarts=report.worker_restarts)
        lost: List[_Chunk] = []
        for future, chunk in list(in_flight.items()):
            if future.done() and future.exception() is None:
                self._complete(future.result())
            else:
                lost.append(chunk)
        in_flight.clear()
        submitted_at.clear()
        pool.shutdown(wait=False, cancel_futures=True)
        log.warning(
            "worker death detected: rebuilding pool "
            "(restart %d/%d, %d chunk(s) to reschedule)",
            report.worker_restarts, self._config.max_worker_restarts, len(lost),
        )
        for chunk in lost:
            chunk.crashes += 1
            was_isolated = chunk.isolated
            chunk.reset_flight_state()
            if was_isolated:
                # It was alone in the pool when the worker died: the
                # kill is unambiguously its doing.
                self._quarantine(chunk, report)
            elif (
                chunk.crashes >= self._config.max_chunk_crashes
                and len(chunk.items) > 1
            ):
                self._bisect(chunk, pending, report)
            elif chunk.crashes >= self._config.max_chunk_crashes:
                # Single-trial suspect: confirm in isolation before
                # quarantining (its earlier crashes may have been a
                # chunk-mate's fault — pool breakage is collective).
                probation.append(chunk)
                report.chunks_rescheduled += 1
                self._count("chunks_rescheduled")
            else:
                pending.append(chunk)
                report.chunks_rescheduled += 1
                self._count("chunks_rescheduled")
        return None

    def _bisect(
        self, chunk: _Chunk, pending: Deque[_Chunk], report: SupervisorReport
    ) -> None:
        """Split a suspect chunk so repeated crashes corner the
        offending trial instead of losing the whole chunk forever."""
        mid = len(chunk.items) // 2
        log.warning(
            "chunk involved in %d worker deaths: bisecting %d trials "
            "into %d + %d",
            chunk.crashes, len(chunk.items), mid, len(chunk.items) - mid,
        )
        self._emit("supervisor.bisect", size=len(chunk.items), crashes=chunk.crashes)
        pending.append(_Chunk(items=chunk.items[:mid]))
        pending.append(_Chunk(items=chunk.items[mid:]))
        report.chunks_rescheduled += 2
        self._count("chunks_rescheduled", 2)

    def _quarantine(self, chunk: _Chunk, report: SupervisorReport) -> None:
        if not self._config.quarantine:
            raise WorkerCrashError(
                f"trial {chunk.items[0]!r} killed a worker {chunk.crashes} "
                "times and quarantine is disabled (--quarantine to exclude "
                "it and continue)"
            )
        for item in chunk.items:
            report.quarantined.append(
                QuarantinedTrial(item=item, crashes=chunk.crashes)
            )
            log.error(
                "QUARANTINED poison trial %r after %d worker deaths; "
                "excluding it and continuing", item, chunk.crashes,
            )
            self._emit("supervisor.quarantine", crashes=chunk.crashes)
        self._count("quarantined_trials", len(chunk.items))

    # -- hang detection ----------------------------------------------------

    def _chunk_deadline(self, chunk: _Chunk, factor: float) -> Optional[float]:
        if self._config.trial_deadline is None:
            return None
        return self._config.trial_deadline * factor * max(1, len(chunk.items))

    def _check_deadlines(
        self,
        pool: ProcessPoolExecutor,
        in_flight: Dict[Any, _Chunk],
        submitted_at: Dict[Any, float],
        report: SupervisorReport,
    ) -> None:
        """Warn on slow chunks; kill workers hosting hung ones.

        The kill breaks the pool, so a hung chunk re-enters the normal
        crash path (reschedule → bisect → quarantine) — one recovery
        machine for both failure shapes.
        """
        if self._config.trial_deadline is None:
            return
        now = self._clock()
        for future, chunk in in_flight.items():
            age = now - submitted_at.get(future, now)
            hard = self._chunk_deadline(chunk, self._config.hard_deadline_factor)
            soft = self._chunk_deadline(chunk, self._config.soft_deadline_factor)
            if hard is not None and age > hard and not chunk.hard_killed:
                chunk.hard_killed = True
                report.hard_kills += 1
                self._count("hard_kills")
                self._emit("supervisor.hard_kill", age=age, deadline=hard)
                log.error(
                    "chunk of %d trial(s) hung for %.1fs (> hard deadline "
                    "%.1fs): killing its workers and rescheduling",
                    len(chunk.items), age, hard,
                )
                self._kill_workers(pool)
                return
            if soft is not None and age > soft and not chunk.soft_warned:
                chunk.soft_warned = True
                report.soft_deadline_warnings += 1
                self._count("deadline_warnings")
                self._emit("supervisor.deadline_warn", age=age, deadline=soft)
                log.warning(
                    "chunk of %d trial(s) running for %.1fs (> soft "
                    "deadline %.1fs); will hard-kill at %.1fs",
                    len(chunk.items), age, soft,
                    hard if hard is not None else float("inf"),
                )

    @staticmethod
    def _kill_workers(pool: ProcessPoolExecutor) -> None:
        """Terminate every worker process (private-API, best-effort:
        there is no public way to kill a hung ``ProcessPoolExecutor``
        worker).  The pool marks itself broken as the children die."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # already-dead / platform quirks
                pass

    # -- graceful degradation ----------------------------------------------

    def _trip_breaker(self, report: SupervisorReport) -> None:
        report.breaker_tripped = True
        self._set_breaker_gauge(1)
        self._emit("supervisor.breaker_open", restarts=report.worker_restarts)
        log.error(
            "CIRCUIT BREAKER OPEN: %d worker restarts exceeded the budget "
            "of %d; degrading to serial in-process execution (slower, but "
            "the run completes)",
            report.worker_restarts, self._config.max_worker_restarts,
        )

    def _drain_serial(
        self,
        pending: Deque[_Chunk],
        probation: Deque[_Chunk],
        report: SupervisorReport,
    ) -> None:
        for chunk in list(pending) + list(probation):
            self._complete(self._task(chunk.items))
            report.serial_chunks += 1
            self._count("serial_chunks")
