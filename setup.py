"""Setup shim.

``pip install -e .`` needs the ``wheel`` package; on fully offline
machines without it, run ``python setup.py develop`` instead — both
produce the same editable install of ``repro`` from ``src/``.
"""

from setuptools import setup

setup()
