"""Benches for the §5 discussion ablations.

* ``test_cca_interplay`` (§5.1): bulk goodput under Stob actions for
  Reno/CUBIC/BBR, plus the phase-gated variant.  Expectation: actions
  cost some throughput, never collapse it; the gate helps BBR's
  bandwidth estimate.
* ``test_cca_identification`` (§5.2): a passive classifier identifies
  the CCA from packet sequences well above chance; Stob shaping pushes
  it toward chance.
"""

import pytest

from benchmarks.conftest import write_result
from repro.experiments.cca_identification import (
    format_cca_id,
    run_cca_identification,
)
from repro.experiments.cca_interplay import format_interplay, run_interplay

pytestmark = pytest.mark.benchmark(group="cca")


def test_cca_interplay(benchmark, bench_scale):
    kwargs = (
        {}
        if bench_scale == "full"
        else {"transfer_mib": 12, "duration": 2.5}
    )
    results = benchmark.pedantic(
        lambda: run_interplay(**kwargs), rounds=1, iterations=1
    )
    rendered = format_interplay(results)
    print("\n" + rendered)
    write_result(f"bench_cca_interplay_{bench_scale}", rendered)

    by_key = {(r.cca, r.action): r for r in results}
    for cca in ("reno", "cubic", "bbr"):
        base = by_key[(cca, "none")].goodput_mbps
        assert base > 20, f"{cca} baseline should move data"
        for action in ("delay", "split", "delay+gate"):
            shaped = by_key[(cca, action)].goodput_mbps
            # Obfuscation costs throughput but must not collapse it.
            assert shaped > 0.25 * base, (cca, action, shaped, base)
    # BBR keeps a sane bandwidth model in all conditions.
    for action in ("none", "delay+gate"):
        ratio = by_key[("bbr", action)].bw_estimate_ratio
        assert ratio is not None and ratio > 0.3


def test_cca_identification(benchmark, bench_scale):
    kwargs = (
        {"n_train_per_cca": 12, "n_test_per_cca": 6}
        if bench_scale == "full"
        else {"n_train_per_cca": 7, "n_test_per_cca": 4}
    )
    result = benchmark.pedantic(
        lambda: run_cca_identification(**kwargs), rounds=1, iterations=1
    )
    rendered = format_cca_id(result)
    print("\n" + rendered)
    write_result(f"bench_cca_id_{bench_scale}", rendered)

    # The identifier works on clean flows (well above 1/3 chance)...
    assert result.baseline_accuracy > 0.55
    # ...and Stob shaping damages it.
    assert result.defended_accuracy < result.baseline_accuracy
