"""CI smoke test: the artifact cache across real CLI invocations.

Runs a small parameter sweep twice against the same ``--cache`` store:
the second run must report cache hits (via ``repro cache stats``) and
render the identical table.  Also collects the same tiny dataset twice
through the cache and byte-diffs the two archives — the warm copy is
decoded from the store, so any codec or corruption-handling regression
shows up as a byte difference.

Usage:  PYTHONPATH=src python benchmarks/smoke_cache.py
"""

import contextlib
import io
import re
import sys
import tempfile
from pathlib import Path

from repro.cli import main


def _stats_hits(cache: str) -> int:
    captured = io.StringIO()
    with contextlib.redirect_stdout(captured):
        if main(["cache", "stats", "--cache", cache]) != 0:
            return -1
    match = re.search(r"(\d+) hits", captured.getvalue())
    return int(match.group(1)) if match else -1


def run() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        cache = str(Path(tmp) / "store")

        # Dataset byte-identity: cold collect, then warm from cache.
        archives = []
        for name in ("cold.npz", "warm.npz"):
            out = Path(tmp) / name
            argv = [
                "collect", "--samples", "1", "--seed", "11",
                "--cache", cache, "--out", str(out),
            ]
            if main(argv) != 0:
                print(f"smoke: collect {name} failed", file=sys.stderr)
                return 1
            archives.append(out.read_bytes())
        if archives[0] != archives[1]:
            print("smoke: warm dataset differs from cold dataset",
                  file=sys.stderr)
            return 1

        # Sweep twice: identical rendering, and the second run hits.
        tables = []
        for name in ("sweep1.txt", "sweep2.txt"):
            out = Path(tmp) / name
            argv = [
                "sweep", "--samples", "3", "--folds", "2", "--seed", "11",
                "--cache", cache, "--out", str(out),
            ]
            if main(argv) != 0:
                print(f"smoke: sweep {name} failed", file=sys.stderr)
                return 1
            tables.append(out.read_bytes())
        if tables[0] != tables[1]:
            print("smoke: warm sweep output differs from cold",
                  file=sys.stderr)
            return 1

        hits = _stats_hits(cache)
        if hits <= 0:
            print(f"smoke: expected cache hits, stats reported {hits}",
                  file=sys.stderr)
            return 1
    print(f"smoke: cache warm runs byte-identical, {hits} hits recorded")
    return 0


if __name__ == "__main__":
    sys.exit(run())
