"""Benchmark configuration.

Every bench regenerates one table/figure of the paper and prints it.
By default the benches run at a reduced scale so the whole suite
finishes in minutes; set ``REPRO_BENCH_FULL=1`` to run at the paper's
scale (9 sites x 100 samples, 5-fold CV, the full alpha sweep) as used
for EXPERIMENTS.md.

Heavy experiment benches use ``benchmark.pedantic(rounds=1)`` — they
are end-to-end reproductions, not microbenchmarks; the micro suite in
``bench_micro.py`` exercises the hot paths with proper statistics.
"""

import os

import pytest

#: Scale switch: full = the paper's configuration.
FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def bench_scale():
    return "full" if FULL else "small"


@pytest.fixture(scope="session")
def experiment_config():
    from repro.experiments.config import ExperimentConfig

    if FULL:
        return ExperimentConfig()
    return ExperimentConfig(
        n_samples=24, n_folds=3, n_estimators=80, balance_to=20, seed=2025
    )


@pytest.fixture(scope="session")
def collected_dataset(experiment_config):
    """The 9-site dataset, collected once per session over the stack
    simulator (shared by table2 / censorship benches)."""
    from repro.web.pageload import collect_dataset

    return collect_dataset(
        n_samples=experiment_config.n_samples,
        config=experiment_config.pageload,
        seed=experiment_config.seed,
    )


def write_result(name: str, text: str) -> None:
    """Persist a bench's rendered table under results/."""
    directory = os.path.join(os.path.dirname(__file__), "..", "results")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
