"""Microbenchmarks of the hot paths (proper pytest-benchmark stats).

These are not paper reproductions; they track the performance of the
substrates so regressions in the simulator or the ML stack are caught:

* simulated-TCP event throughput,
* page-load simulation rate,
* k-FP feature extraction rate,
* random-forest fit/predict,
* SACK scoreboard arithmetic,
* raw event-loop churn vs. the pre-observability baseline loop.

:class:`BaselineEventLoop` is a frozen copy of the event loop as it
stood *before* the observability hooks landed.  It exists so the
disabled-path overhead of instrumentation is measured against real
code, not remembered numbers: ``tests/obs/test_overhead_guard.py``
asserts the instrumented-but-disabled loop stays within 5 % of this
baseline's throughput on the same workload (the absolute numbers from
this machine are recorded in ``results/bench_micro_pre_obs.txt``).
"""

import heapq
import itertools
import time

import numpy as np
import pytest

from repro.attacks.features.kfp import KfpFeatureExtractor
from repro.simnet.engine import Event as _Event
from repro.ml.forest import RandomForest
from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.host import make_flow
from repro.stack.intervals import RangeSet
from repro.stack.tcp import TcpConfig
from repro.units import mbps, msec, mib
from repro.web.pageload import PageLoadConfig, load_page
from repro.web.sites import SITE_CATALOG

pytestmark = pytest.mark.benchmark(group="micro")


class BaselineEventLoop:
    """The seed repo's event loop, verbatim, minus docstrings.

    Frozen on purpose: this is the pre-instrumentation reference the
    observability overhead guard compares against.  Do not "improve"
    it — any change invalidates the comparison.
    """

    def __init__(self):
        self._heap = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0

    def schedule(self, delay, action):
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = _Event(time=self._now + delay, seq=next(self._seq), action=action)
        heapq.heappush(self._heap, event)
        return event

    def step(self):
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            self._processed += 1
            return True
        return False

    def run(self, until=None, max_events=None):
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                return
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                self._now = max(self._now, until)
                return
            if self.step():
                executed += 1
        if until is not None:
            self._now = max(self._now, until)


def run_event_churn(loop, n_events=20_000):
    """The fixed overhead-guard workload: a self-rescheduling chain
    plus a pre-scheduled batch, exercising push, pop and cancellation
    exactly as page loads do.  Returns events executed."""
    remaining = [n_events // 2]

    def chain():
        if remaining[0] > 0:
            remaining[0] -= 1
            loop.schedule(1e-6, chain)

    loop.schedule(0.0, chain)
    cancel_every = 16
    for i in range(n_events // 2):
        event = loop.schedule(1e-6 * (i + 1), lambda: None)
        if i % cancel_every == 0:
            event.cancel()
    loop.run()
    return loop._processed


def event_churn_throughput(loop_factory, n_events=20_000, repeats=5):
    """Best-of-``repeats`` events/second for :func:`run_event_churn`."""
    best = float("inf")
    executed = 0
    for _ in range(repeats):
        loop = loop_factory()
        started = time.perf_counter()
        executed = run_event_churn(loop, n_events)
        best = min(best, time.perf_counter() - started)
    return executed / best


def test_event_churn_vs_baseline(benchmark):
    """Track raw loop churn; the 5 % guard lives in tests/obs."""
    from repro.simnet.engine import EventLoop

    executed = benchmark(lambda: run_event_churn(EventLoop(), 20_000))
    assert executed > 10_000
    # Same workload must execute the same events on the baseline loop.
    assert run_event_churn(BaselineEventLoop(), 20_000) == executed


class _BenchPacket:
    """Minimal wire packet for link-layer benchmarks."""

    __slots__ = ("wire_size",)

    def __init__(self, wire_size):
        self.wire_size = wire_size


def run_link_bursts(link_factory=None, n_bursts=200, burst=32):
    """Push TSO-sized bursts through one clean link; returns packets
    delivered.  This isolates the vectorized transit path (cumsum
    service schedule + batched delivery events) from TCP processing."""
    from repro.simnet.engine import Simulator
    from repro.simnet.entities import Link

    sim = Simulator()
    delivered = [0]

    def receiver(_packet):
        delivered[0] += 1

    factory = link_factory or Link
    link = factory(sim, 1.25e9, 0.01, receiver)
    send_burst = getattr(link, "send_burst", None)
    for _ in range(n_bursts):
        packets = [_BenchPacket(1500) for _ in range(burst)]
        if send_burst is not None:
            send_burst(packets)
        else:
            for packet in packets:
                link.send(packet)
    sim.run()
    assert delivered[0] == n_bursts * burst
    return delivered[0]


def link_burst_throughput(link_factory=None, repeats=5):
    """Best-of-``repeats`` packets/second for :func:`run_link_bursts`."""
    best = float("inf")
    packets = 0
    for _ in range(repeats):
        started = time.perf_counter()
        packets = run_link_bursts(link_factory)
        best = min(best, time.perf_counter() - started)
    return packets / best


def test_link_burst_transit(benchmark):
    """Track the vectorized link transit path in isolation."""
    packets = benchmark(run_link_bursts)
    assert packets == 200 * 32


def run_bulk_transfer():
    sim = Simulator()
    path = NetworkPath(rate=mbps(100), rtt=msec(20))
    flow = make_flow(
        sim, path, client_config=TcpConfig(), server_config=TcpConfig()
    )
    flow.server.on_established = lambda: flow.server.write(mib(4))
    flow.connect()
    sim.run(until=10.0)
    assert flow.client.receive_buffer.delivered == mib(4)
    return sim.processed_events


def test_bulk_transfer_events(benchmark):
    events = benchmark(run_bulk_transfer)
    assert events > 1000


def test_page_load_simulation(benchmark):
    config = PageLoadConfig()
    counter = {"seed": 0}

    def run():
        counter["seed"] += 1
        rng = np.random.default_rng(counter["seed"])
        return load_page(SITE_CATALOG["wikipedia.org"], config, rng)

    trace = benchmark(run)
    assert len(trace) > 50


def test_feature_extraction(benchmark, random_trace=None):
    rng = np.random.default_rng(1)
    n = 2000
    times = np.cumsum(rng.exponential(0.002, n))
    dirs = rng.choice([1, -1], n).astype(np.int8)
    sizes = rng.integers(60, 1501, n)
    from repro.capture.trace import Trace

    trace = Trace(times - times[0], dirs, sizes)
    extractor = KfpFeatureExtractor()
    vector = benchmark(extractor.extract, trace)
    assert np.all(np.isfinite(vector))


def test_forest_fit(benchmark):
    rng = np.random.default_rng(2)
    X = rng.normal(0, 1, (400, 135))
    y = rng.integers(0, 9, 400)
    X[np.arange(400), y] += 4.0  # make it learnable

    def fit():
        return RandomForest(n_estimators=20, random_state=0).fit(X, y)

    forest = benchmark(fit)
    assert forest.score(X, y) > 0.9


def test_forest_predict(benchmark):
    rng = np.random.default_rng(3)
    X = rng.normal(0, 1, (400, 135))
    y = rng.integers(0, 9, 400)
    X[np.arange(400), y] += 4.0
    forest = RandomForest(n_estimators=20, random_state=0).fit(X, y)
    predictions = benchmark(forest.predict, X)
    assert len(predictions) == 400


def test_rangeset_churn(benchmark):
    rng = np.random.default_rng(4)
    ops = rng.integers(0, 1_000_000, size=(2000, 2))

    def churn():
        rs = RangeSet()
        for start, width in ops:
            rs.add(int(start), int(start + width % 3000 + 1))
        for start, width in ops[:500]:
            rs.remove(int(start), int(start + width % 1500 + 1))
        return rs.total

    total = benchmark(churn)
    assert total > 0
