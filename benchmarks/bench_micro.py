"""Microbenchmarks of the hot paths (proper pytest-benchmark stats).

These are not paper reproductions; they track the performance of the
substrates so regressions in the simulator or the ML stack are caught:

* simulated-TCP event throughput,
* page-load simulation rate,
* k-FP feature extraction rate,
* random-forest fit/predict,
* SACK scoreboard arithmetic.
"""

import numpy as np
import pytest

from repro.attacks.features.kfp import KfpFeatureExtractor
from repro.ml.forest import RandomForest
from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.host import make_flow
from repro.stack.intervals import RangeSet
from repro.stack.tcp import TcpConfig
from repro.units import mbps, msec, mib
from repro.web.pageload import PageLoadConfig, load_page
from repro.web.sites import SITE_CATALOG

pytestmark = pytest.mark.benchmark(group="micro")


def run_bulk_transfer():
    sim = Simulator()
    path = NetworkPath(rate=mbps(100), rtt=msec(20))
    flow = make_flow(
        sim, path, client_config=TcpConfig(), server_config=TcpConfig()
    )
    flow.server.on_established = lambda: flow.server.write(mib(4))
    flow.connect()
    sim.run(until=10.0)
    assert flow.client.receive_buffer.delivered == mib(4)
    return sim.processed_events


def test_bulk_transfer_events(benchmark):
    events = benchmark(run_bulk_transfer)
    assert events > 1000


def test_page_load_simulation(benchmark):
    config = PageLoadConfig()
    counter = {"seed": 0}

    def run():
        counter["seed"] += 1
        rng = np.random.default_rng(counter["seed"])
        return load_page(SITE_CATALOG["wikipedia.org"], config, rng)

    trace = benchmark(run)
    assert len(trace) > 50


def test_feature_extraction(benchmark, random_trace=None):
    rng = np.random.default_rng(1)
    n = 2000
    times = np.cumsum(rng.exponential(0.002, n))
    dirs = rng.choice([1, -1], n).astype(np.int8)
    sizes = rng.integers(60, 1501, n)
    from repro.capture.trace import Trace

    trace = Trace(times - times[0], dirs, sizes)
    extractor = KfpFeatureExtractor()
    vector = benchmark(extractor.extract, trace)
    assert np.all(np.isfinite(vector))


def test_forest_fit(benchmark):
    rng = np.random.default_rng(2)
    X = rng.normal(0, 1, (400, 135))
    y = rng.integers(0, 9, 400)
    X[np.arange(400), y] += 4.0  # make it learnable

    def fit():
        return RandomForest(n_estimators=20, random_state=0).fit(X, y)

    forest = benchmark(fit)
    assert forest.score(X, y) > 0.9


def test_forest_predict(benchmark):
    rng = np.random.default_rng(3)
    X = rng.normal(0, 1, (400, 135))
    y = rng.integers(0, 9, 400)
    X[np.arange(400), y] += 4.0
    forest = RandomForest(n_estimators=20, random_state=0).fit(X, y)
    predictions = benchmark(forest.predict, X)
    assert len(predictions) == 400


def test_rangeset_churn(benchmark):
    rng = np.random.default_rng(4)
    ops = rng.integers(0, 1_000_000, size=(2000, 2))

    def churn():
        rs = RangeSet()
        for start, width in ops:
            rs.add(int(start), int(start + width % 3000 + 1))
        for start, width in ops[:500]:
            rs.remove(int(start), int(start + width % 1500 + 1))
        return rs.total

    total = benchmark(churn)
    assert total > 0
