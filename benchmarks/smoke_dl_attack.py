"""CI smoke test: the deep-learning-class attack (TAM + numpy MLP)
trains deterministically and learns.

Three properties on a tiny generated closed world:

1. **Above chance** — TamMlpAttack clearly beats 9-class chance on
   held-out undefended traces (the MLP really learns from the TAM).
2. **Bit-identical re-train** — two equal-spec attacks trained on the
   same data agree on every weight and every prediction.
3. **Worker-count invariance** — parallel TAM extraction (workers=2)
   trains the exact same model as serial extraction.

Exits non-zero on any violation.

Usage:  PYTHONPATH=src python benchmarks/smoke_dl_attack.py
"""

import sys

import numpy as np

from repro.attacks.registry import attack_from_spec, build_attack
from repro.web.tracegen import StatisticalTraceGenerator


def run() -> int:
    generator = StatisticalTraceGenerator(seed=17)
    dataset = generator.generate_dataset(n_samples=10, seed=17)
    traces, y = dataset.to_arrays()
    traces = list(traces)
    rng = np.random.default_rng(0)
    order = rng.permutation(len(y))
    split = int(len(y) * 0.7)
    train_x = [traces[i] for i in order[:split]]
    train_y = y[order[:split]]
    test_x = [traces[i] for i in order[split:]]
    test_y = y[order[split:]]

    spec_kwargs = dict(n_bins=32, hidden=(32,), epochs=40, seed=5)
    attack = build_attack("tam-mlp", **spec_kwargs).fit(train_x, train_y)
    accuracy = float(np.mean(attack.predict(test_x) == test_y))
    n_classes = int(y.max()) + 1
    chance = 1.0 / n_classes
    if accuracy <= 2 * chance:
        print(
            f"smoke: tam-mlp accuracy {accuracy:.3f} not above "
            f"2x chance ({2 * chance:.3f})",
            file=sys.stderr,
        )
        return 1

    retrained = attack_from_spec(attack.spec()).fit(train_x, train_y)
    for a, b in zip(attack.mlp.weights_, retrained.mlp.weights_):
        if not np.array_equal(a, b):
            print("smoke: re-trained weights differ", file=sys.stderr)
            return 1
    if not np.array_equal(attack.predict(test_x), retrained.predict(test_x)):
        print("smoke: re-trained predictions differ", file=sys.stderr)
        return 1

    fanned = build_attack("tam-mlp", workers=2, **spec_kwargs).fit(
        train_x, train_y
    )
    for a, b in zip(attack.mlp.weights_, fanned.mlp.weights_):
        if not np.array_equal(a, b):
            print(
                "smoke: workers=2 trained different weights than serial",
                file=sys.stderr,
            )
            return 1

    print(
        f"smoke: tam-mlp accuracy {accuracy:.3f} "
        f"(chance {chance:.3f}); re-train and workers=2 bit-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(run())
