"""Bench: the content-addressed artifact cache.

Runs the Table-2 evaluation cold (empty store) and warm (same store)
and reports the speedup — the acceptance bar is >= 5x, and in practice
a warm run only derives keys and reads JSON, so it lands far above
that.  Also proves the cache is safe under the parallel runner: the
collected dataset and its downstream metrics are byte-identical at
``workers=1`` and ``workers=2``.
"""

import time

import pytest

from benchmarks.conftest import write_result
from repro.cache import ArtifactStore
from repro.capture.serialize import dumps_dataset
from repro.experiments.table2 import format_table2, run_table2

pytestmark = pytest.mark.benchmark(group="cache")


def test_cache_cold_vs_warm(experiment_config, collected_dataset, bench_scale,
                            tmp_path):
    store = ArtifactStore(str(tmp_path / "store"))

    start = time.perf_counter()
    cold = run_table2(experiment_config, dataset=collected_dataset, cache=store)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_table2(experiment_config, dataset=collected_dataset, cache=store)
    warm_seconds = time.perf_counter() - start

    assert warm == cold
    assert store.counters["hits"] > 0
    speedup = cold_seconds / warm_seconds
    stats = store.stats()
    lines = [
        "Artifact-cache bench: Table 2 cold vs warm",
        f"  cold run: {cold_seconds:8.2f} s",
        f"  warm run: {warm_seconds:8.2f} s",
        f"  speedup:  {speedup:8.1f}x (acceptance floor: 5x)",
        f"  store:    {stats.entries} entries, {stats.payload_bytes} payload bytes",
        "",
        format_table2(cold),
    ]
    rendered = "\n".join(lines)
    print("\n" + rendered)
    write_result(f"bench_cache_{bench_scale}", rendered)
    assert speedup >= 5.0


def test_cache_byte_identity_across_workers(tmp_path):
    """workers is a wall-clock knob: the cached dataset artifact and
    the evaluated metrics must be byte-for-byte equal at 1 and 2."""
    import dataclasses

    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import RunnerConfig, collect_resilient
    from repro.web.pageload import PageLoadConfig
    from repro.web.sites import SITE_CATALOG

    config = ExperimentConfig(
        n_samples=2, n_folds=2, n_estimators=10, balance_to=2, seed=21,
        pageload=PageLoadConfig(),
    )
    sites = sorted(SITE_CATALOG)[:4]
    archives, tables = [], []
    for workers in (1, 2):
        store = ArtifactStore(str(tmp_path / f"w{workers}"))
        dataset, _report = collect_resilient(
            sites,
            config.n_samples,
            pageload_config=config.pageload,
            seed=config.seed,
            runner_config=RunnerConfig(workers=workers),
            cache=store,
        )
        archives.append(dumps_dataset(dataset))
        table = run_table2(
            dataclasses.replace(config, workers=workers),
            dataset=dataset,
            cache=store,
        )
        tables.append(format_table2(table).encode("utf-8"))
    assert archives[0] == archives[1]
    assert tables[0] == tables[1]
