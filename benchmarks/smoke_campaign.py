"""CI smoke test: sharded campaign survives SIGTERM, resumes to a
byte-identical manifest, and verify/repair close the loop.

The arc, driven end-to-end:

1. a reference campaign runs uninterrupted through the real CLI with
   two workers;
2. a second campaign over the same config is SIGTERM'd after its first
   durable shard — ``verify`` must report it consistent (incomplete is
   not corrupt);
3. ``campaign run --resume`` completes it, and its ``MANIFEST.json``
   must be **byte-identical** to the reference run's;
4. a shard payload is then bit-flipped: ``verify`` must exit non-zero
   naming the shard, ``repair`` must re-derive it byte-identically,
   and a final ``verify`` must pass.

Exits non-zero on any deviation.

Usage:  PYTHONPATH=src python benchmarks/smoke_campaign.py
"""

import os
import signal
import sys
import tempfile
from pathlib import Path

from repro.campaign import run_campaign
from repro.campaign.config import CampaignConfig
from repro.campaign.manifest import manifest_path, shard_payload_path
from repro.cli import main
from repro.errors import RunTerminated

SITES, SAMPLES, SHARD_SIZE, SEED = "12", "2", "8", "11"


def fail(message: str) -> int:
    print(f"campaign-smoke: {message}", file=sys.stderr)
    return 1


def run() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        reference = str(Path(tmp) / "reference")
        cut = str(Path(tmp) / "cut")
        flags = [
            "--sites", SITES, "--samples", SAMPLES,
            "--shard-size", SHARD_SIZE, "--seed", SEED,
        ]

        if main(["campaign", "run", reference, "--workers", "2"] + flags) != 0:
            return fail("reference campaign failed")

        # SIGTERM after the first shard becomes durable: the signal is
        # translated, the ladder finishes its current rung, and the
        # manifest on disk stays consistent.
        config = CampaignConfig(
            n_sites=int(SITES), n_samples=int(SAMPLES),
            shard_size=int(SHARD_SIZE), seed=int(SEED),
        )
        try:
            run_campaign(
                cut, config,
                progress=lambda record: os.kill(os.getpid(), signal.SIGTERM),
            )
            return fail("interrupted run finished without being terminated")
        except RunTerminated:
            pass

        if main(["campaign", "verify", cut]) != 0:
            return fail("interrupted campaign failed verification "
                        "(incomplete must not mean corrupt)")
        if main(["campaign", "run", cut, "--resume", "--workers", "2"]) != 0:
            return fail("resume failed")
        ref_bytes = Path(manifest_path(reference)).read_bytes()
        if Path(manifest_path(cut)).read_bytes() != ref_bytes:
            return fail("resumed manifest differs from uninterrupted run")

        # Bit-flip one payload: verify must flag it, repair must heal
        # it byte-identically, verify must then pass.
        victim = shard_payload_path(cut, 1)
        with open(victim, "r+b") as handle:
            handle.seek(64)
            byte = handle.read(1)
            handle.seek(64)
            handle.write(bytes([byte[0] ^ 0xFF]))
        if main(["campaign", "verify", cut]) != 1:
            return fail("verify did not flag a bit-flipped shard")
        if main(["campaign", "repair", cut]) != 0:
            return fail("repair failed on a bit-flipped shard")
        if main(["campaign", "verify", cut]) != 0:
            return fail("verify still failing after repair")
        if Path(manifest_path(cut)).read_bytes() != ref_bytes:
            return fail("repair changed the manifest")
        if main(["campaign", "stats", cut]) != 0:
            return fail("stats failed")

    print(
        "campaign-smoke: SIGTERM'd campaign resumed byte-identically; "
        "bit-flip detected, repaired byte-identically, re-verified clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(run())
