"""CI smoke test: a tiny collection with ``--workers 2`` must produce a
byte-identical archive to the serial run.

Exercises the real CLI entry point end to end (argument parsing,
runner, pool workers, npz serialisation) rather than library calls, so
a regression anywhere in the chain fails the job.  Exits non-zero on
any mismatch.

Usage:  PYTHONPATH=src python benchmarks/smoke_parallel.py
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.cli import main


def run() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        serial = Path(tmp) / "serial.npz"
        fanned = Path(tmp) / "fanned.npz"
        base = ["collect", "--samples", "1", "--seed", "7"]
        if main(base + ["--out", str(serial)]) != 0:
            print("smoke: serial collection failed", file=sys.stderr)
            return 1
        if main(base + ["--out", str(fanned), "--workers", "2"]) != 0:
            print("smoke: parallel collection failed", file=sys.stderr)
            return 1
        if serial.read_bytes() != fanned.read_bytes():
            print(
                "smoke: --workers 2 archive differs from serial archive",
                file=sys.stderr,
            )
            return 1
        with np.load(str(serial), allow_pickle=False) as archive:
            if "allow_pickle" in archive.files:
                print("smoke: stray allow_pickle key in archive", file=sys.stderr)
                return 1
    print("smoke: parallel collection byte-identical to serial")
    return 0


if __name__ == "__main__":
    sys.exit(run())
