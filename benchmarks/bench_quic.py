"""Bench: TCP vs QUIC fingerprinting + open-world evaluation.

Backs two of the paper's contextual claims:

* §2.3 "the same will apply to QUIC" — QUIC traffic is about as
  fingerprintable as TCP, and the Stob layer plugs into it unchanged;
* §3's "closed world ... represents an upper bound on attack success"
  — the open-world numbers sit below the closed-world ones.
"""

import pytest

from benchmarks.conftest import write_result
from repro.experiments.config import ExperimentConfig
from repro.experiments.open_world import format_open_world, run_open_world
from repro.experiments.quic_vs_tcp import format_quic_vs_tcp, run_quic_vs_tcp

pytestmark = pytest.mark.benchmark(group="quic-openworld")


def test_quic_vs_tcp(benchmark, experiment_config, collected_dataset,
                     bench_scale):
    if bench_scale == "small":
        # QUIC collection happens inside the runner; keep it light.
        config = ExperimentConfig(
            n_samples=12, n_folds=3, n_estimators=60, balance_to=10,
            seed=experiment_config.seed,
        )
        tcp_dataset = None
    else:
        config = experiment_config
        tcp_dataset = collected_dataset
    result = benchmark.pedantic(
        lambda: run_quic_vs_tcp(config, tcp_dataset=tcp_dataset),
        rounds=1,
        iterations=1,
    )
    rendered = format_quic_vs_tcp(result)
    print("\n" + rendered)
    write_result(f"bench_quic_vs_tcp_{bench_scale}", rendered)

    # Both transports are fingerprintable well above 1/9 chance.
    assert result.accuracy_tcp[0] > 0.5
    assert result.accuracy_quic[0] > 0.5
    # Same ballpark (within 15 points).
    assert abs(result.accuracy_tcp[0] - result.accuracy_quic[0]) < 0.15


def test_open_world(benchmark, bench_scale):
    kwargs = (
        {"n_monitored_samples": 30, "n_background_sites": 60}
        if bench_scale == "full"
        else {"n_monitored_samples": 20, "n_background_sites": 40}
    )
    results = benchmark.pedantic(
        lambda: run_open_world(seed=3, **kwargs), rounds=1, iterations=1
    )
    rendered = format_open_world(results)
    print("\n" + rendered)
    write_result(f"bench_open_world_{bench_scale}", rendered)

    undefended = results[0]
    assert undefended.recall > 0.5
    assert undefended.precision > 0.5
    # Open world is harder than the closed-world upper bound (~0.93).
    assert undefended.recall < 0.93
