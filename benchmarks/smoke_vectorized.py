"""Perf regression gate for the vectorized hot path (DESIGN §13).

Measures the live simulator against the frozen pre-vectorization
reference stack (``tests/differential/reference_stack.py``) **in the
same process**, so the gate compares a machine-independent *ratio*
rather than absolute wall-clock numbers — the same trick the obs
overhead guard uses with :class:`benchmarks.bench_micro.BaselineEventLoop`.

Two workloads:

* **page loads** — fixed (site, seed) page-load simulations, the cost
  center of every experiment (loads/second);
* **event churn** — the raw event-loop workload from
  :func:`benchmarks.bench_micro.run_event_churn` (events/second),
  comparing the live loop against ``BaselineEventLoop``.

Modes::

    PYTHONPATH=src:. python benchmarks/smoke_vectorized.py            # gate
    PYTHONPATH=src:. python benchmarks/smoke_vectorized.py --record   # rebaseline

The gate (CI job ``vectorized-smoke``) recomputes both speedup ratios
and fails if either has regressed more than :data:`TOLERANCE` (20 %)
against the committed ``results/bench_baseline.json``.  ``--record``
rewrites the baseline — only do that deliberately, with a perf change
you intend to commit.  Absolute numbers are recorded informationally
(they vary by machine); only the ratios gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))
sys.path.insert(0, REPO)

BASELINE_PATH = os.path.join(REPO, "results", "bench_baseline.json")

#: Allowed regression of either speedup ratio against the baseline.
TOLERANCE = 0.20

#: The fixed page-load workload: (site, visit seed) pairs.
PAGE_WORKLOAD = [
    ("wikipedia.org", 0),
    ("bing.com", 1),
    ("github.com", 2),
    ("wikipedia.org", 3),
    ("bing.com", 4),
]


def _run_page_workload() -> int:
    """Simulate the fixed workload once; returns total packets (sanity)."""
    from repro.web.pageload import PageLoadConfig, load_page, visit_seed_rng
    from repro.web.sites import SITE_CATALOG

    config = PageLoadConfig()
    packets = 0
    for label, seed in PAGE_WORKLOAD:
        rng = visit_seed_rng(seed, label, 0)
        packets += len(load_page(SITE_CATALOG[label], config, rng))
    return packets


def page_load_rate(repeats: int = 3) -> float:
    """Best-of-``repeats`` page loads per second on the live stack."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        packets = _run_page_workload()
        best = min(best, time.perf_counter() - started)
    assert packets > 1000, f"workload suspiciously small: {packets} packets"
    return len(PAGE_WORKLOAD) / best


def reference_page_load_rate(repeats: int = 3) -> float:
    """Same workload through the frozen pre-vectorization stack."""
    from tests.differential.reference_stack import reference_stack

    with reference_stack():
        return page_load_rate(repeats)


def event_throughput() -> float:
    """Live event-loop churn (events/second)."""
    from benchmarks.bench_micro import event_churn_throughput
    from repro.simnet.engine import EventLoop

    return event_churn_throughput(EventLoop)


def link_burst_rate() -> float:
    """Vectorized link transit throughput (packets/second)."""
    from benchmarks.bench_micro import link_burst_throughput

    return link_burst_throughput()


def reference_link_burst_rate() -> float:
    """Same burst workload through the frozen reference link."""
    from benchmarks.bench_micro import link_burst_throughput
    from tests.differential.reference_stack import RefLink

    return link_burst_throughput(RefLink)


def baseline_event_throughput() -> float:
    """Pre-observability baseline loop churn (events/second)."""
    from benchmarks.bench_micro import BaselineEventLoop, event_churn_throughput

    return event_churn_throughput(BaselineEventLoop)


def measure() -> dict:
    live_loads = page_load_rate()
    ref_loads = reference_page_load_rate()
    live_events = event_throughput()
    base_events = baseline_event_throughput()
    live_burst = link_burst_rate()
    ref_burst = reference_link_burst_rate()
    return {
        "workload": [list(pair) for pair in PAGE_WORKLOAD],
        "page_loads_per_sec": round(live_loads, 2),
        "reference_page_loads_per_sec": round(ref_loads, 2),
        "page_load_speedup": round(live_loads / ref_loads, 3),
        "events_per_sec": round(live_events),
        "baseline_events_per_sec": round(base_events),
        "event_churn_speedup": round(live_events / base_events, 3),
        "link_burst_packets_per_sec": round(live_burst),
        "reference_link_burst_packets_per_sec": round(ref_burst),
        "link_burst_speedup": round(live_burst / ref_burst, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--record", action="store_true",
        help="rewrite results/bench_baseline.json from this run",
    )
    args = parser.parse_args(argv)

    current = measure()
    print(json.dumps(current, indent=1))

    if args.record:
        with open(BASELINE_PATH, "w") as handle:
            json.dump(current, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"baseline recorded -> {BASELINE_PATH}")
        return 0

    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)

    failures = []
    for key in ("page_load_speedup", "event_churn_speedup",
                "link_burst_speedup"):
        floor = baseline[key] * (1.0 - TOLERANCE)
        status = "ok" if current[key] >= floor else "REGRESSED"
        print(
            f"{key}: {current[key]:.3f} "
            f"(baseline {baseline[key]:.3f}, floor {floor:.3f}) {status}"
        )
        if current[key] < floor:
            failures.append(key)
    if failures:
        print(f"FAIL: {', '.join(failures)} regressed >{TOLERANCE:.0%}")
        return 1
    print("PASS: vectorized hot path within tolerance of committed baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
