"""Bench: regenerate Table 1 (defense taxonomy) with measured overheads.

The taxonomy rows come from the paper verbatim; for every defense we
implement, bandwidth/latency/packet overheads are measured on the
9-site dataset.  §2.3's cost claims to reproduce: padding-heavy
defenses (FRONT, BuFLO, Tamaraw) burn substantial bandwidth (FRONT is
cited at ~80 %); delaying costs no bandwidth (work-conserving);
splitting costs only duplicated headers.
"""

import pytest

from benchmarks.conftest import write_result
from repro.experiments.table1 import format_table1, run_table1

pytestmark = pytest.mark.benchmark(group="table1")


def test_table1(benchmark, experiment_config, bench_scale):
    rows = benchmark.pedantic(
        lambda: run_table1(experiment_config), rounds=1, iterations=1
    )
    rendered = format_table1(rows)
    print("\n" + rendered)
    write_result(f"bench_table1_{bench_scale}", rendered)

    by_system = {r.info.system: r for r in rows}
    # Taxonomy completeness: all 16 paper rows + our three.
    assert len(rows) >= 19
    # Padding costs bandwidth, non-work-conserving (§2.3).
    assert by_system["FRONT"].bandwidth > 0.2
    assert by_system["BuFLO"].bandwidth > 0.5
    # Delaying is work-conserving: zero bandwidth, positive latency.
    assert by_system["Stob-Delay"].bandwidth == pytest.approx(0.0)
    assert by_system["Stob-Delay"].latency > 0
    # Splitting costs only headers: small, bounded bandwidth overhead.
    assert 0 < by_system["Stob-Split"].bandwidth < 0.10
    # HTTPOS's small-MSS trick costs many packets and latency (§2.3).
    assert by_system["HTTPOS"].packets > 0.3
    assert by_system["HTTPOS"].latency > 0
