"""Bench: the deep-learning-class attack (TAM + MLP) on the 9-site
closed world, next to the classical baselines.

Backs the robustness story: a defense that only fools hand-crafted
feature sets is not enough — the TAM+MLP attacker learns its own
discriminators from coarse time x direction matrices and must also be
degraded.  Asserts the DL attack beats the k-NN baseline on
undefended traffic (the ISSUE-9 acceptance bar).
"""

import pytest

from benchmarks.conftest import write_result
from repro.experiments.attack_robustness import (
    format_attack_robustness,
    run_attack_robustness,
)

pytestmark = pytest.mark.benchmark(group="dl-attack")


def test_dl_attack_vs_classical(benchmark, experiment_config,
                                collected_dataset, bench_scale):
    cells = benchmark.pedantic(
        lambda: run_attack_robustness(
            experiment_config,
            dataset=collected_dataset,
            attacks=("knn", "tam-mlp"),
        ),
        rounds=1,
        iterations=1,
    )
    rendered = format_attack_robustness(cells)
    print("\n" + rendered)
    write_result(f"bench_dl_attack_{bench_scale}", rendered)

    grid = {(c.attack, c.defense): c.accuracy for c in cells}
    # The learned attacker clearly beats 9-class chance everywhere the
    # paper's countermeasures run, and beats the k-NN baseline on
    # undefended traffic.
    assert grid[("tam-mlp", "original")] > 0.5
    assert grid[("tam-mlp", "original")] > grid[("knn", "original")]
    for defense in ("split", "delayed", "combined"):
        assert grid[("tam-mlp", defense)] > 3 * (1.0 / 9.0)
