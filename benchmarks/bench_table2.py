"""Bench: regenerate Table 2 (k-FP accuracy under countermeasures).

Paper reference values (closed world, 9 sites, 74 traces each):

    N    Original        Split           Delayed         Combined
    15   0.798+-0.017    0.825+-0.024    0.825+-0.030    0.795+-0.031
    30   0.884+-0.007    0.860+-0.013    0.855+-0.030    0.850+-0.062
    45   0.938+-0.016    0.897+-0.030    0.913+-0.021    0.904+-0.004
    All  0.963+-0.002    0.980+-0.008    0.980+-0.014    0.992+-0.009

Shape expectations: accuracy rises with N; defended accuracy grows more
slowly; full-trace defended accuracy is not materially below original.
"""

import pytest

from benchmarks.conftest import write_result
from repro.experiments.table2 import format_table2, run_table2

pytestmark = pytest.mark.benchmark(group="table2")


def test_table2(benchmark, experiment_config, collected_dataset, bench_scale):
    result = benchmark.pedantic(
        lambda: run_table2(experiment_config, dataset=collected_dataset),
        rounds=1,
        iterations=1,
    )
    rendered = format_table2(result)
    print("\n" + rendered)
    write_result(f"bench_table2_{bench_scale}", rendered)

    # Shape assertions (loose: statistical pipeline).
    original_all = result[("original", "all")].mean
    original_15 = result[("original", 15)].mean
    assert original_all > original_15, "accuracy must grow with N"
    assert original_all > 0.75, "full-trace closed-world k-FP should be strong"
    combined_all = result[("combined", "all")].mean
    assert combined_all > original_all - 0.08, (
        "the paper found countermeasures do not reduce full-trace accuracy"
    )
