"""Benchmark suite: one bench per table/figure of the paper, §5
ablations, and microbenchmarks of the hot paths.

Run with ``pytest benchmarks/ --benchmark-only``; set
``REPRO_BENCH_FULL=1`` for the paper-scale configuration.
"""
