"""Bench: k-FP grid under adverse network conditions.

No paper table corresponds to this — it stress-tests the paper's §3
result: does the (small) protection of the kernel-emulable split/delay
countermeasures survive once the stack itself is retransmitting
through bursty loss and link flaps?

Expectations are loose (statistical pipeline over noisy networks):

* the clean row reproduces the Table-2 "All" shape — strong original
  accuracy, defenses not materially below it;
* adverse rows stay well above chance — retransmission noise perturbs
  but does not erase site fingerprints;
* collection completes gracefully: every stall/retry/drop is reported
  rather than silently truncating traces.
"""

import pytest

from benchmarks.conftest import write_result
from repro.experiments.adverse_network import (
    AdverseConfig,
    format_adverse,
    run_adverse,
)

pytestmark = pytest.mark.benchmark(group="adverse")


def test_adverse(benchmark, experiment_config, bench_scale):
    config = AdverseConfig(base=experiment_config)
    result = benchmark.pedantic(
        lambda: run_adverse(config),
        rounds=1,
        iterations=1,
    )
    rendered = format_adverse(result)
    print("\n" + rendered)
    write_result(f"bench_adverse_{bench_scale}", rendered)

    chance = 1.0 / 9.0
    for condition in ("clean", "bursty", "flap"):
        original = result.cells[(condition, "original")].mean
        assert original > 2 * chance, (
            f"{condition}: k-FP should beat chance by a wide margin"
        )
    clean_original = result.cells[("clean", "original")].mean
    clean_combined = result.cells[("clean", "combined")].mean
    assert clean_combined > clean_original - 0.15, (
        "full-trace defended accuracy should not collapse (Table-2 shape)"
    )
    # The reliability layer must account for every trial.
    for condition, report in result.reports.items():
        assert report.completed_trials + report.dropped_trials > 0
