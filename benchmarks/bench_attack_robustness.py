"""Bench: defense effects across attacker families (k-FP / CUMUL / kNN).

Backs §2.2's manipulation taxonomy: timing-only defenses cannot affect
a timing-blind attacker (CUMUL), size-changing ones can.
"""

import pytest

from benchmarks.conftest import write_result
from repro.experiments.attack_robustness import (
    format_attack_robustness,
    run_attack_robustness,
)

pytestmark = pytest.mark.benchmark(group="robustness")


def test_attack_robustness(benchmark, experiment_config, collected_dataset,
                           bench_scale):
    cells = benchmark.pedantic(
        lambda: run_attack_robustness(
            experiment_config, dataset=collected_dataset
        ),
        rounds=1,
        iterations=1,
    )
    rendered = format_attack_robustness(cells)
    print("\n" + rendered)
    write_result(f"bench_attack_robustness_{bench_scale}", rendered)

    grid = {(c.attack, c.defense): c.accuracy for c in cells}
    # Every attacker beats 9-class chance (1/9 ~ 0.11) on originals.
    # CUMUL's pure cumulative-size curves are weak on these traces
    # (high per-visit volume variance), but still informative.
    assert grid[("kfp", "original")] > 0.5
    assert grid[("knn", "original")] > 0.4
    assert grid[("cumul", "original")] > 0.2
    # Delaying cannot move the timing-blind CUMUL (same size sequence,
    # identical feature vectors -> identical predictions).
    assert abs(
        grid[("cumul", "delayed")] - grid[("cumul", "original")]
    ) < 1e-9
    # Splitting rewrites the size sequence, so it *does* move CUMUL.
    assert grid[("cumul", "split")] != grid[("cumul", "original")]
    # k-FP remains the strongest attacker on original traffic.
    assert grid[("kfp", "original")] >= grid[("knn", "original")] - 0.05
