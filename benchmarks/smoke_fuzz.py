"""CI fuzz smoke gate: a short scenario campaign must come back clean
and bit-reproducible.

Runs the same ``repro fuzz run`` campaign twice into two fresh corpora
through the real CLI entry point — argument parsing, position-derived
scenario sampling, the capture -> sanitize -> defend -> features ->
eval pipeline under the invariant oracle, shrinking and quarantine all
exercised.  Fails (exit 1) iff

  * either run quarantines a finding — the exit-1-iff-finding
    convention: a reproducer JSON in the job log is the bug report, or
  * the two campaign digests differ — the fuzzer itself lost
    determinism, which would make every future reproducer worthless.

Usage:  PYTHONPATH=src python benchmarks/smoke_fuzz.py
"""

import sys
import tempfile
from pathlib import Path

from repro.cli import main
from repro.fuzz import QuarantineCorpus, run_fuzz

SEED = 0
BUDGET = 25


def fail(message: str) -> int:
    print(f"fuzz-smoke: {message}", file=sys.stderr)
    return 1


def run() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        first_dir = Path(tmp) / "corpus-a"
        second_dir = Path(tmp) / "corpus-b"

        # First pass through the CLI: the user-facing contract,
        # including the exit-1-iff-finding convention.
        code = main(
            [
                "fuzz", "run",
                "--seed", str(SEED),
                "--budget", str(BUDGET),
                "--corpus", str(first_dir),
            ]
        )
        if code != 0:
            for path in QuarantineCorpus(first_dir).entries():
                print(f"fuzz-smoke: reproducer {path}:", file=sys.stderr)
                print(path.read_text(), file=sys.stderr)
            return fail(f"campaign quarantined findings (exit {code})")

        # Second pass through the library: same campaign, fresh corpus.
        report = run_fuzz(seed=SEED, budget=BUDGET, corpus_dir=second_dir)
        if report.findings:
            return fail(f"second run found {len(report.findings)} findings")

        first = run_fuzz(seed=SEED, budget=BUDGET, corpus_dir=first_dir)
        if first.campaign_digest != report.campaign_digest:
            return fail(
                "campaign digest not reproducible: "
                f"{first.campaign_digest[:16]} != {report.campaign_digest[:16]}"
            )
        if first.corpus_digest != report.corpus_digest:
            return fail("corpus digest not reproducible")

    print(
        f"fuzz-smoke: seed {SEED} x {BUDGET} scenarios clean twice, "
        f"campaign digest {report.campaign_digest[:16]} reproducible "
        f"({report.stalls} stalled visits, {report.eval_skipped} eval skips)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(run())
