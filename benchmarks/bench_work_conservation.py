"""Bench: §2.3's work-conservation claim, measured.

"Padding is worse than timing control, because it wastes network
bandwidth in a non-work-conserving manner.  Timing manipulation ...
leaves the idle resource for other flows.  Using smaller packet sizes
is not as harmful as padding."
"""

import pytest

from benchmarks.conftest import write_result
from repro.experiments.work_conservation import (
    format_work_conservation,
    run_work_conservation,
)

pytestmark = pytest.mark.benchmark(group="work-conservation")


def test_work_conservation(benchmark, bench_scale):
    duration = 6.0 if bench_scale == "full" else 4.0
    results = benchmark.pedantic(
        lambda: run_work_conservation(duration=duration),
        rounds=1,
        iterations=1,
    )
    rendered = format_work_conservation(results)
    print("\n" + rendered)
    write_result(f"bench_work_conservation_{bench_scale}", rendered)

    by_primitive = {r.primitive: r for r in results}
    base = by_primitive["none"].victim_goodput_mbps
    # Delaying and splitting leave the victim's share intact (within 10%).
    assert by_primitive["delay"].victim_goodput_mbps > 0.9 * base
    assert by_primitive["split"].victim_goodput_mbps > 0.9 * base
    # Padding visibly taxes the victim...
    assert by_primitive["padding"].victim_goodput_mbps < 0.7 * base
    # ...by roughly the cover-traffic rate it injects.
    taken = base - by_primitive["padding"].victim_goodput_mbps
    assert taken > 0.5 * by_primitive["padding"].cover_mbps
