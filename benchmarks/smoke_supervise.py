"""CI chaos smoke test: a collection whose worker is killed mid-run
must recover and produce a byte-identical archive to an undisturbed
serial run.

Drives the real CLI entry point with ``REPRO_CHAOS=crash-once:...``
armed, so the whole chain is exercised: argument parsing, the
supervised pool rebuilding a genuinely broken ``ProcessPoolExecutor``,
chunk rescheduling with position-derived seeds, metric snapshot
shipping, and npz serialisation.  Asserts the recovery left footprints
in the metrics file (``supervisor.worker_restarts`` and
``supervisor.chunks_rescheduled``).  Exits non-zero on any mismatch.

Usage:  PYTHONPATH=src python benchmarks/smoke_supervise.py
"""

import json
import os
import sys
import tempfile
from pathlib import Path

from repro.cli import main
from repro.supervise import CHAOS_ENV


def fail(message: str) -> int:
    print(f"chaos-smoke: {message}", file=sys.stderr)
    return 1


def run() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        serial = Path(tmp) / "serial.npz"
        crashed = Path(tmp) / "crashed.npz"
        metrics = Path(tmp) / "metrics.json"
        base = ["collect", "--samples", "2", "--seed", "7"]

        if main(base + ["--out", str(serial)]) != 0:
            return fail("serial collection failed")

        os.environ[CHAOS_ENV] = f"crash-once:{tmp}/sentinel"
        try:
            code = main(
                base
                + [
                    "--out", str(crashed),
                    "--workers", "2",
                    "--metrics", str(metrics),
                ]
            )
        finally:
            os.environ.pop(CHAOS_ENV, None)
        if code != 0:
            return fail("collection under injected worker crash failed")
        if not Path(f"{tmp}/sentinel").exists():
            return fail("chaos fault never fired (sentinel missing)")

        if serial.read_bytes() != crashed.read_bytes():
            return fail("recovered archive differs from serial archive")

        counters = json.loads(metrics.read_text()).get("counters", {})
        restarts = counters.get("supervisor.worker_restarts", 0)
        rescheduled = counters.get("supervisor.chunks_rescheduled", 0)
        if restarts < 1:
            return fail(f"expected worker_restarts >= 1, got {restarts}")
        if rescheduled < 1:
            return fail(f"expected chunks_rescheduled >= 1, got {rescheduled}")

    print(
        "chaos-smoke: worker killed and recovered "
        f"(restarts={restarts}, rescheduled={rescheduled}); "
        "archive byte-identical to serial"
    )
    return 0


if __name__ == "__main__":
    sys.exit(run())
