"""Bench: the §3 censorship curves (accuracy vs observed prefix).

The paper's reading of Table 2: "the rate at which k-FP's accuracy
increases over N is slower when either defense is applied compared to
no defense, indicating that countermeasures delay confident detection
in the censorship setting."  This bench produces the full curve and
the detection-delay metric.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.experiments.censorship import (
    detection_delay,
    format_censorship,
    run_censorship_curve,
)

pytestmark = pytest.mark.benchmark(group="censorship")


def test_censorship_curves(benchmark, experiment_config, collected_dataset,
                           bench_scale):
    prefixes = (10, 15, 30, 45, 90) if bench_scale == "small" else (
        5, 10, 15, 20, 30, 45, 60, 90
    )
    points = benchmark.pedantic(
        lambda: run_censorship_curve(
            experiment_config, dataset=collected_dataset, prefixes=prefixes
        ),
        rounds=1,
        iterations=1,
    )
    rendered = format_censorship(points)
    delays = detection_delay(points, threshold=0.85)
    rendered += "\n\nFirst prefix reaching 85% accuracy:\n" + "\n".join(
        f"  {name:<10} {n if n is not None else '> sweep'}"
        for name, n in sorted(delays.items())
    )
    print("\n" + rendered)
    write_result(f"bench_censorship_{bench_scale}", rendered)

    by_defense = {}
    for p in points:
        by_defense.setdefault(p.defense, {})[p.n_packets] = p.mean
    # Accuracy grows with the prefix for the undefended condition.
    original = by_defense["original"]
    ordered = [original[n] for n in sorted(original)]
    assert ordered[-1] >= ordered[0] - 0.02
    # Defended conditions never make the censor *faster* than original
    # by a clear margin at the smallest prefix.
    smallest = min(original)
    for name in ("split", "delayed", "combined"):
        assert by_defense[name][smallest] <= original[smallest] + 0.1
