"""Bench: serial-vs-N-workers speedup of the parallel execution layer.

Times the three parallelised hot paths — trial collection
(``collect_dataset``), k-FP feature extraction (``extract_many``) and
random-forest fit/predict (``n_jobs``) — at 1, 2 and all-cores worker
counts, and asserts along the way that every parallel result is
bit-identical to the serial one (the whole point of position-derived
seeding).

Speedup is recorded, not hard-asserted: CI containers may expose a
single core, in which case the pool only adds overhead.  On a 4-core
machine the collection and forest stages are expected to reach >= 2x
at ``workers=4``.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import FULL, write_result
from repro.attacks.features.kfp import KfpFeatureExtractor
from repro.ml.forest import RandomForest
from repro.web.pageload import PageLoadConfig, collect_dataset

pytestmark = pytest.mark.benchmark(group="parallel")

N_SAMPLES = 24 if FULL else 6
N_ESTIMATORS = 150 if FULL else 60


def worker_counts():
    cores = os.cpu_count() or 1
    return sorted({1, 2, cores})


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def dataset_fingerprint(dataset):
    return [
        (label, len(trace), float(trace.times.sum()), int(trace.sizes.sum()))
        for label in dataset.labels
        for trace in dataset.traces[label]
    ]


def test_parallel_speedup(bench_scale):
    config = PageLoadConfig()
    rows = []
    baselines = {}

    # --- Stage 1: trial collection -------------------------------------
    serial_ds, t_serial = timed(
        lambda: collect_dataset(n_samples=N_SAMPLES, config=config, seed=7)
    )
    reference = dataset_fingerprint(serial_ds)
    baselines["collect"] = t_serial
    rows.append(("collect", 1, t_serial, 1.0))
    for workers in worker_counts():
        if workers == 1:
            continue
        fanned, elapsed = timed(
            lambda w=workers: collect_dataset(
                n_samples=N_SAMPLES, config=config, seed=7, workers=w
            )
        )
        assert dataset_fingerprint(fanned) == reference, (
            f"collect_dataset(workers={workers}) diverged from serial"
        )
        rows.append(("collect", workers, elapsed, t_serial / elapsed))

    # --- Stage 2: k-FP feature extraction ------------------------------
    traces = [t for label in serial_ds.labels for t in serial_ds.traces[label]]
    extractor = KfpFeatureExtractor()
    serial_X, t_serial = timed(lambda: extractor.extract_many(traces))
    rows.append(("features", 1, t_serial, 1.0))
    for workers in worker_counts():
        if workers == 1:
            continue
        fanned_X, elapsed = timed(
            lambda w=workers: extractor.extract_many(traces, workers=w)
        )
        assert np.array_equal(serial_X, fanned_X), (
            f"extract_many(workers={workers}) diverged from serial"
        )
        rows.append(("features", workers, elapsed, t_serial / elapsed))

    # --- Stage 3: random-forest fit + predict ---------------------------
    labels = sorted(serial_ds.labels)
    y = np.concatenate(
        [
            np.full(len(serial_ds.traces[label]), i)
            for i, label in enumerate(labels)
        ]
    )
    X = extractor.extract_many(
        [t for label in labels for t in serial_ds.traces[label]]
    )
    serial_forest, t_serial = timed(
        lambda: RandomForest(
            n_estimators=N_ESTIMATORS, random_state=3
        ).fit(X, y)
    )
    serial_proba = serial_forest.predict_proba(X)
    rows.append(("forest", 1, t_serial, 1.0))
    for workers in worker_counts():
        if workers == 1:
            continue
        fanned_forest, elapsed = timed(
            lambda w=workers: RandomForest(
                n_estimators=N_ESTIMATORS, random_state=3, n_jobs=w
            ).fit(X, y)
        )
        assert np.array_equal(
            serial_proba, fanned_forest.predict_proba(X)
        ), f"forest(n_jobs={workers}) diverged from serial"
        rows.append(("forest", workers, elapsed, t_serial / elapsed))

    lines = [
        f"Parallel speedup ({os.cpu_count()} cores, "
        f"{N_SAMPLES} samples/site, {N_ESTIMATORS} trees)",
        f"{'stage':>10} | {'workers':>7} | {'seconds':>8} | {'speedup':>7}",
    ]
    for stage, workers, elapsed, speedup in rows:
        lines.append(
            f"{stage:>10} | {workers:>7} | {elapsed:>8.3f} | {speedup:>6.2f}x"
        )
    lines.append("All parallel results verified bit-identical to serial.")
    rendered = "\n".join(lines)
    print("\n" + rendered)
    write_result(f"bench_parallel_{bench_scale}", rendered)
