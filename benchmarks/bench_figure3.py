"""Bench: regenerate Figure 3 (packet/TSO size adjustment vs throughput).

Paper setup: iperf3, one connection, 100 Gb/s link, two Xeon servers;
packet size reduced from 1500 by alpha down to 1500 - 10*alpha (reset,
repeat), TSO size from 44 by alpha/4 down to 44 - 8*(alpha/4) or 1.
Paper result: throughput decreases as alpha grows but "preserves
19.7 Gb/s or higher".

Shape expectations here: monotone-ish decline from tens of Gb/s at
alpha=0 to a floor that is still a substantial fraction of line rate.
"""

import pytest

from benchmarks.conftest import write_result
from repro.experiments.figure3 import (
    Figure3Config,
    format_figure3,
    run_figure3,
)

pytestmark = pytest.mark.benchmark(group="figure3")


def _config(bench_scale):
    if bench_scale == "full":
        return Figure3Config(warmup=0.05, measure=0.10)
    return Figure3Config(
        alphas=(0, 20, 40, 60, 80, 100), warmup=0.03, measure=0.05
    )


def test_figure3(benchmark, bench_scale):
    config = _config(bench_scale)
    points = benchmark.pedantic(
        lambda: run_figure3(config), rounds=1, iterations=1
    )
    rendered = format_figure3(points)
    print("\n" + rendered)
    write_result(f"bench_figure3_{bench_scale}", rendered)

    by_alpha = {p.alpha: p for p in points}
    base = by_alpha[0].goodput_gbps
    floor = by_alpha[100].goodput_gbps
    assert base > 30, "default sizing should reach tens of Gb/s"
    assert floor < base, "aggressive reduction must cost throughput"
    assert floor > 0.15 * base, (
        "the paper's floor stays a sizeable fraction (19.7/100 Gb/s)"
    )
    # Monotone within noise: every point within 20% of the running min.
    running = base
    for alpha in sorted(by_alpha):
        running = min(running, by_alpha[alpha].goodput_gbps)
        assert by_alpha[alpha].goodput_gbps >= running - 0.2 * base
    # The knob actually moved the wire shapes.
    assert by_alpha[100].mean_packet_size < by_alpha[0].mean_packet_size
    assert by_alpha[100].mean_tso_packets < by_alpha[0].mean_tso_packets
