"""Bench: the emulation-vs-enforcement gap (the paper's core thesis).

Not a table in the paper — this is the ablation its argument implies:
the trace-level emulation of split+delay (what WF papers evaluate) and
the stack-enforced version (what would actually deploy) produce
different traffic, and a classifier trained on the emulation does not
transfer perfectly to the deployment.
"""

import pytest

from benchmarks.conftest import write_result
from repro.experiments.enforcement import (
    format_enforcement,
    run_enforcement_gap,
)

pytestmark = pytest.mark.benchmark(group="enforcement")


def test_enforcement_gap(benchmark, experiment_config, collected_dataset,
                         bench_scale):
    result = benchmark.pedantic(
        lambda: run_enforcement_gap(
            experiment_config, raw_dataset=collected_dataset
        ),
        rounds=1,
        iterations=1,
    )
    rendered = format_enforcement(result)
    print("\n" + rendered)
    write_result(f"bench_enforcement_{bench_scale}", rendered)

    # Enforced traffic really is different from the stock traffic...
    assert result.mean_packets_enforced > result.mean_packets_original
    # ...and the attack still works on each distribution individually.
    assert result.accuracy_emulated[0] > 0.5
    assert result.accuracy_enforced[0] > 0.5
