"""Bench: the §3 'ongoing work' parameter sweep.

Sweeps split threshold x delay intensity and reports the
protection-vs-cost surface.  Expectations: more aggressive parameters
cost more (bandwidth from header duplication, latency from delay) —
and, per the paper's own Table-2 finding, conservative split/delay
parameters barely move closed-world k-FP accuracy.
"""

import pytest

from benchmarks.conftest import write_result
from repro.experiments.parameter_sweep import (
    SweepConfig,
    format_parameter_sweep,
    run_parameter_sweep,
)

pytestmark = pytest.mark.benchmark(group="sweep")


def test_parameter_sweep(benchmark, experiment_config, collected_dataset,
                         bench_scale):
    thresholds = (1200, 800) if bench_scale == "small" else (
        1400, 1200, 1000, 800
    )
    delay_ranges = (
        ((0.10, 0.30), (0.50, 1.50))
        if bench_scale == "small"
        else ((0.0, 0.0), (0.10, 0.30), (0.25, 0.75), (0.50, 1.50))
    )
    sweep_config = SweepConfig(
        base=experiment_config,
        thresholds=thresholds,
        delay_ranges=delay_ranges,
    )
    points = benchmark.pedantic(
        lambda: run_parameter_sweep(sweep_config, dataset=collected_dataset),
        rounds=1,
        iterations=1,
    )
    rendered = format_parameter_sweep(points)
    print("\n" + rendered)
    write_result(f"bench_parameter_sweep_{bench_scale}", rendered)

    by_key = {
        (p.split_threshold, p.delay_low, p.delay_high): p for p in points
    }
    # Stronger delaying costs more latency.
    mild = by_key[(1200, 0.10, 0.30)]
    harsh = by_key[(1200, 0.50, 1.50)]
    assert harsh.latency_overhead > mild.latency_overhead
    # Lower split thresholds split more packets (no padding though, so
    # bandwidth overhead stays zero at the paper's accounting).
    assert by_key[(800, 0.10, 0.30)].accuracy_mean <= 1.0
    # Attack still works everywhere (the paper's sobering finding).
    for p in points:
        assert p.accuracy_mean > 0.4
