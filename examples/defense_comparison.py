#!/usr/bin/env python
"""Compare the WF defense zoo: protection vs overhead.

For each implemented defense (the paper's Table 1 baselines plus the
§3 stack countermeasures), measures

* k-FP closed-world accuracy on defended traces (lower = stronger),
* bandwidth and latency overheads (lower = cheaper),

reproducing §2.3's argument that the strong defenses are padding-heavy
and expensive, while stack-enforceable splitting/delaying is nearly
free but (alone, with conservative parameters) only a modest defense.

Run:  python examples/defense_comparison.py      (~2-4 minutes)
"""

from repro.defenses.overhead import overhead_summary
from repro.defenses.registry import build_defense, implemented_defenses
from repro.experiments.config import ExperimentConfig
from repro.experiments.table2 import evaluate_dataset
from repro.ml.metrics import mean_std
from repro.web.tracegen import StatisticalTraceGenerator


def main():
    config = ExperimentConfig(n_folds=3, n_estimators=60, seed=21)
    generator = StatisticalTraceGenerator(seed=config.seed)
    dataset = generator.generate_dataset(n_samples=20, seed=config.seed)

    print(f"{'defense':<11} {'kfp accuracy':>15} {'bw ovh':>9} "
          f"{'lat ovh':>9} {'pkt ovh':>9}")
    baseline, _ = mean_std(evaluate_dataset(dataset, config))
    print(f"{'(none)':<11} {baseline:>15.3f} {'-':>9} {'-':>9} {'-':>9}")
    for name in implemented_defenses():
        if name == "original":
            continue
        defense = build_defense(name, seed=config.seed)
        defended = dataset.map(defense.apply)
        accuracy, _ = mean_std(evaluate_dataset(defended, config))
        cost = overhead_summary(dataset, defense, max_traces=60)
        print(
            f"{name:<11} {accuracy:>15.3f} {cost['bandwidth']:>+9.0%} "
            f"{cost['latency']:>+9.0%} {cost['packets']:>+9.0%}"
        )
    print(
        "\nReading: regularisers (buflo/tamaraw/regulator) crush accuracy "
        "at huge cost; FRONT/WTF-PAD trade bandwidth for protection; the "
        "paper's conservative split/delay are almost free — and only "
        "enforceable in the stack."
    )


if __name__ == "__main__":
    main()
