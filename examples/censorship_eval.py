#!/usr/bin/env python
"""Censorship-scenario evaluation (a small version of the paper's §3).

Collects a closed-world dataset of simulated page loads for the nine
sites, applies the paper's split/delay countermeasures, and evaluates
the k-FP attack on trace prefixes — the packets a censor sees before
it must decide whether to block.

Run:  python examples/censorship_eval.py         (~2-3 minutes)
"""

from repro.capture.sanitize import sanitize_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.table2 import build_datasets, evaluate_dataset
from repro.ml.metrics import mean_std
from repro.web.pageload import collect_dataset


def main():
    config = ExperimentConfig(
        n_samples=20, n_folds=3, n_estimators=60, balance_to=16, seed=11
    )
    print("collecting 9 sites x 20 page loads over the stack simulator ...")
    raw = collect_dataset(
        n_samples=config.n_samples, config=config.pageload, seed=config.seed
    )
    clean, report = sanitize_dataset(raw, balance_to=config.balance_to)
    kept = report.get("_balanced_to")
    print(f"sanitised to {kept} traces per site (paper: 100 -> 74)\n")

    datasets = build_datasets(clean, config.seed)
    print(f"{'N':>4} | {'original':>15} | {'split':>15} | "
          f"{'delayed':>15} | {'combined':>15}")
    for n in (15, 30, 45, "all"):
        cells = []
        for name in ("original", "split", "delayed", "combined"):
            mean, std = mean_std(
                evaluate_dataset(datasets[(name, n)], config)
            )
            cells.append(f"{mean:.3f} ± {std:.3f}")
        label = "All" if n == "all" else n
        print(f"{label:>4} | " + " | ".join(f"{c:>15}" for c in cells))
    print(
        "\nReading: accuracy should grow with N; the countermeasures "
        "slow that growth (delaying confident censorship decisions) "
        "without reducing full-trace accuracy — the paper's §3 result."
    )


if __name__ == "__main__":
    main()
