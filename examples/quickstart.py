#!/usr/bin/env python
"""Quickstart: obfuscate a simulated web page load with Stob.

This walks the core API end to end:

1. simulate a page load over the host-stack model and capture the
   packet trace a censor on the access link would observe;
2. install a Stob policy (in-stack splitting + delaying) on the server
   endpoint and load the same page again;
3. compare the two traces: packet sizes, timing, overheads.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.capture.trace import IN
from repro.defenses.overhead import bandwidth_overhead, latency_overhead
from repro.stob import ObfuscationPolicy, PolicyRegistry, StobController
from repro.stob.actions import action_from_policy
from repro.web import PageLoadConfig, SITE_CATALOG, load_page


def describe(tag, trace):
    incoming = trace.filter_direction(IN)
    print(
        f"  {tag:<10} packets={len(trace):5d}  "
        f"bytes={trace.total_bytes / 1e6:6.2f} MB  "
        f"duration={trace.duration:5.2f} s  "
        f"max incoming packet={incoming.sizes.max():5d} B  "
        f"mean IAT={trace.interarrival_times().mean() * 1e3:6.2f} ms"
    )


def main():
    site = SITE_CATALOG["wikipedia.org"]
    config = PageLoadConfig(rate_mbps=50, rtt_ms=30)

    # --- 1. stock stack ---------------------------------------------------
    baseline = load_page(site, config, np.random.default_rng(7))

    # --- 2. the application registers an obfuscation policy ---------------
    # Policies are compact, serialisable objects living in a shared
    # registry (the paper's app<->stack shared memory, Figure 2).
    registry = PolicyRegistry()
    registry.register(
        "wikipedia.org",
        ObfuscationPolicy(
            name="split+delay",
            split_threshold=1200,       # split packets > 1200 B in two
            delay_fraction_range=(0.10, 0.30),  # stretch gaps 10-30 %
            seed=7,
        ),
    )

    # --- 3. the stack enforces it on the connection ------------------------
    policy = registry.lookup("wikipedia.org")
    controller = StobController(action=action_from_policy(policy))
    defended = load_page(
        site, config, np.random.default_rng(7), server_controller=controller
    )

    print("Stob quickstart: wikipedia.org over a 50 Mb/s, 30 ms path")
    describe("stock", baseline)
    describe("stob", defended)
    print(
        f"  overheads: bandwidth {bandwidth_overhead(baseline, defended):+.1%}, "
        f"latency {latency_overhead(baseline, defended):+.1%}"
    )
    print(
        f"  constraint report: {controller.report.total_violations} clamped "
        f"outputs, {controller.report.gated_segments} gated segments"
    )
    assert defended.filter_direction(IN).sizes.max() <= 1200 + 52
    print("  in-stack enforcement verified: no incoming packet above the "
          "split threshold (+headers).")


if __name__ == "__main__":
    main()
