#!/usr/bin/env python
"""Authoring defenses as state machines (Maybenot-style) on Stob.

The WF community increasingly expresses defenses as small probabilistic
state machines (Maybenot).  Stob can host such machines *in the stack*,
where their PAD and BLOCK actions are actually enforceable.  This
example runs three reference machines on a simulated page load and
shows their wire-level effect.

Run:  python examples/defense_machines.py
"""

import numpy as np

from repro.capture.trace import IN
from repro.simnet.engine import Simulator
from repro.simnet.path import NetworkPath
from repro.stack.host import make_flow
from repro.stob.machines import (
    attach_machine,
    burst_block_machine,
    constant_rate_machine,
    front_machine,
)
from repro.units import mbps, msec


def run(machine_factory, label):
    sim = Simulator()
    flow = make_flow(sim, NetworkPath(rate=mbps(30), rtt=msec(25)))
    records = []
    flow.server_host.nic.add_tap(
        lambda p, t: records.append((t, p.dummy, p.wire_size))
    )
    runner = None
    if machine_factory is not None:
        runner = attach_machine(
            sim, flow.server, machine_factory(), rng=np.random.default_rng(3)
        )
    flow.server.on_established = lambda: flow.server.write(400_000)
    flow.connect()
    sim.run(until=6.0)
    assert flow.client.receive_buffer.delivered == 400_000
    dummies = sum(1 for _t, dummy, _s in records if dummy)
    real = sum(1 for _t, dummy, _s in records if not dummy)
    duration = records[-1][0] - records[0][0] if records else 0.0
    pad_bytes = runner.padding_injected if runner else 0
    print(
        f"  {label:<22} real pkts={real:4d}  dummy pkts={dummies:4d}  "
        f"padding={pad_bytes / 1e3:7.1f} KB  duration={duration:5.2f} s"
    )


def main():
    print("State-machine defenses over one 400 KB download:")
    run(None, "(no defense)")
    run(lambda: front_machine(n_padding=150, window=1.0), "front-machine")
    run(lambda: constant_rate_machine(rate_bytes_per_sec=mbps(2)),
        "constant-rate padder")
    run(lambda: burst_block_machine(gap=0.02, every=8), "burst-block (timing)")
    print(
        "\nThe same machine abstraction drives padding (PAD) and timing\n"
        "(BLOCK) actions; Stob enforces both below the socket, which is\n"
        "the paper's requirement for deployable WF defenses."
    )


if __name__ == "__main__":
    main()
