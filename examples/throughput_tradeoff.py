#!/usr/bin/env python
"""Throughput cost of packet-sequence obfuscation (a mini Figure 3).

Sweeps the paper's "maximum reduction degree" alpha over a simulated
100 Gb/s link with a single-core CPU cost model and prints the goodput
curve.  The paper measured that even the most aggressive reduction
preserves ~20 Gb/s — far above typical Internet access rates, which is
the argument that stack-level obfuscation is cheap where it matters.

Run:  python examples/throughput_tradeoff.py      (~1-2 minutes)
"""

from repro.experiments.figure3 import Figure3Config, run_point
from repro.units import to_gbps


def main():
    config = Figure3Config(warmup=0.03, measure=0.05)
    print("alpha  goodput(Gb/s)  avg packet(B)  avg TSO(packets)  CPU")
    baseline = None
    for alpha in (0, 25, 50, 75, 100):
        point = run_point(alpha, config)
        if baseline is None:
            baseline = point.goodput_gbps
        bar = "#" * int(40 * point.goodput_gbps / baseline)
        print(
            f"{alpha:5d}  {point.goodput_gbps:13.1f}  "
            f"{point.mean_packet_size:13.0f}  {point.mean_tso_packets:16.1f}  "
            f"{point.cpu_utilization:4.2f}  {bar}"
        )
    print(
        "\nEven at alpha=100 the single connection moves tens of Gb/s —\n"
        "packet sizing/timing control is affordable at Internet access\n"
        "rates (the paper's Figure 3 argument)."
    )


if __name__ == "__main__":
    main()
