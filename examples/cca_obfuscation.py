#!/usr/bin/env python
"""Hiding the congestion-control algorithm with Stob (paper §5.2).

Packet sequences leak more than website identity: a passive observer
can tell Reno, CUBIC and BBR apart (CCAnalyzer-style), which in turn
hints at OS and application.  This example trains a passive CCA
identifier on clean bulk flows and shows that Stob's packet-sequence
shaping pushes its accuracy toward chance.

Run:  python examples/cca_obfuscation.py          (~1-2 minutes)
"""

import numpy as np

from repro.attacks.cca_id import CCA_NAMES, CcaIdentifier, collect_cca_traces
from repro.stob.actions import ComposedAction, DelayAction, SplitAction
from repro.stob.controller import StobController


def stob_factory(seed=0):
    state = {"n": 0}

    def make():
        state["n"] += 1
        return StobController(
            action=ComposedAction(
                SplitAction(1200, 2),
                DelayAction(0.1, 0.3, rng=np.random.default_rng(seed + state["n"])),
            )
        )

    return make


def main():
    print("training passive CCA identifier on clean bulk flows ...")
    train, y_train = collect_cca_traces(n_per_cca=8, seed=5)
    identifier = CcaIdentifier(random_state=5).fit(train, y_train)

    test_clean, y_test = collect_cca_traces(n_per_cca=4, seed=6)
    clean_acc = identifier.score(test_clean, y_test)

    test_stob, y_stob = collect_cca_traces(
        n_per_cca=4, seed=6, controller_factory=stob_factory(5)
    )
    stob_acc = identifier.score(test_stob, y_stob)

    print(f"  CCAs: {', '.join(CCA_NAMES)} (chance = {1 / len(CCA_NAMES):.2f})")
    print(f"  accuracy on stock flows : {clean_acc:.2f}")
    print(f"  accuracy on Stob flows  : {stob_acc:.2f}")
    print(
        "\nStob's split+delay shaping perturbs exactly the burst/timing\n"
        "signatures the identifier keys on — the same mechanism defends\n"
        "against both website fingerprinting and CCA identification."
    )


if __name__ == "__main__":
    main()
